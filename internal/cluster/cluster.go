// Package cluster simulates a fleet of tiered serverless hosts behind a
// front-end router and a virtual-time autoscaler — the layer ROADMAP open
// item 1 asks for above the single-host simulator. Each node owns its own
// cores, tier capacities, keep-alive cache, and local snapshot store;
// invocation costs come from per-function profiles measured once through
// sched.Invoker (the calibrated single-host machinery), so fleet-scale runs
// stay cheap, deterministic, and anchored to the paper's model.
//
// The cluster-level question mirrors TOSS's page-level one: restore latency
// is dominated by where snapshot state already lives, so the router's
// snapshot-affinity policy (rendezvous hashing) is page tiering writ large —
// steer each function to the nodes whose disks and warm caches already hold
// it, and cold starts shrink without any per-node change.
//
// The event core is built for million-invocation scale (ROADMAP item 2):
// the hot path — pop event, route, dispatch, record — performs no steady-
// state heap allocation. Events live by value in a slice-backed 4-ary heap,
// per-invocation outcomes go to columnar storage (Records), function and
// node names are interned to dense ids at construction, the routable set
// and per-function rendezvous rankings are cached between topology changes,
// and arrivals stream from a pull-based workload.Source so a day-long trace
// never materializes. BenchmarkClusterRun pins the budget: >=1M invocations
// simulated in <5s on one core at <=2 amortized allocations per invocation.
package cluster

import (
	"fmt"
	"sort"

	"toss/internal/costmodel"
	"toss/internal/fleet"
	"toss/internal/fleetobs"
	"toss/internal/guest"
	"toss/internal/keepalive"
	"toss/internal/obs"
	"toss/internal/simtime"
	"toss/internal/stats"
	"toss/internal/telemetry"
	"toss/internal/workload"
	"toss/internal/xray"
)

// Config describes the simulated fleet.
type Config struct {
	// Hosts are the initial nodes' per-tier capacities, one entry per node
	// (use fleet.HostSpec.Hosts for a homogeneous fleet). The autoscaler
	// clones specs from this list round-robin when it grows the fleet.
	Hosts []fleet.HostSpec
	// Cores is the number of invocation slots per node.
	Cores int
	// DiskBytes is each node's local snapshot-store capacity; snapshots
	// evict LRU when it fills.
	DiskBytes int64
	// PullBytesPerSec is the bandwidth for fetching a snapshot onto a
	// node that does not hold it locally (charged on the cold path).
	PullBytesPerSec int64
	// ResumeCost is the cost of resuming a kept-alive VM (as in sched).
	ResumeCost simtime.Duration
	// Router selects the balancing policy.
	Router Policy
	// Cost prices the tiers for keep-alive eviction decisions.
	Cost costmodel.Model
	// SLO is the latency objective the burn tracker (and autoscaler)
	// watches; zero disables burn tracking.
	SLO simtime.Duration
	// BurnWindow is the sliding window for the peak burn rate.
	BurnWindow simtime.Duration
	// Autoscale configures the virtual-time autoscaler.
	Autoscale Autoscaler
	// DecideCost models the front end as a serial router that spends this
	// long on every routing decision: arrivals queue when decisions back
	// up, and both waits land in the invocation's budget (router.queue,
	// router.decide) and its end-to-end latency. Zero (the default) keeps
	// the front end instantaneous, byte-identical to the pre-DecideCost
	// model.
	DecideCost simtime.Duration

	// XRay, when set, collects one budget per invocation labeled
	// "<fn>@<node>/cluster[/<XRayTag>]" with causally ordered
	// router.queue / router.decide / snapshot.pull / node.queue / exec.*
	// segments that sum to the record's end-to-end latency, plus
	// router/autoscaler marks.
	XRay *xray.Collector
	// XRayTag, when non-empty, suffixes every budget label so dumps from
	// different fleet shapes (node count, policy, arrival process) diff as
	// distinct cells in tossctl diff.
	XRayTag string
	// FleetObs, when set, receives the run's decision trace — every
	// routing decision with its candidate ranking, every autoscaler
	// action with its triggering signals — plus node-grid samples on the
	// recorder's virtual-time cadence and per-invocation outcomes.
	FleetObs *fleetobs.Recorder
	// Metrics, when set, receives cluster.* counters and gauges.
	Metrics *telemetry.Metrics
	// Recorder, when set, gets per-node placement rows ("<fn>@<node>") and
	// fleet-resize phase events on its timelines.
	Recorder *obs.Recorder
}

// DefaultConfig returns a small fleet of paper hosts: 3 nodes, 20 cores
// each, 64 GB snapshot store, 2 GB/s pull bandwidth, affinity routing, and
// a 250 ms SLO with autoscaling off.
func DefaultConfig(nodes int) Config {
	return Config{
		Hosts:           fleet.PaperHost().Hosts(nodes),
		Cores:           20,
		DiskBytes:       64 << 30,
		PullBytesPerSec: 2 << 30,
		ResumeCost:      500 * simtime.Microsecond,
		Router:          RouteAffinity,
		Cost:            costmodel.Default(),
		SLO:             250 * simtime.Millisecond,
		BurnWindow:      10 * simtime.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := fleet.ValidateFleet(c.Hosts); err != nil {
		return err
	}
	if c.Cores < 1 {
		return fmt.Errorf("cluster: Cores %d < 1", c.Cores)
	}
	if c.DiskBytes <= 0 {
		return fmt.Errorf("cluster: non-positive snapshot store capacity")
	}
	if c.PullBytesPerSec <= 0 {
		return fmt.Errorf("cluster: non-positive pull bandwidth")
	}
	if c.ResumeCost < 0 {
		return fmt.Errorf("cluster: negative resume cost")
	}
	if c.SLO < 0 || c.BurnWindow < 0 {
		return fmt.Errorf("cluster: negative SLO or burn window")
	}
	return c.Autoscale.validate(len(c.Hosts))
}

// node is one simulated host. Function-keyed state is indexed by the
// cluster's interned function id (a dense int over the sorted profile set)
// so the dispatch path runs on slice indexing instead of string-keyed maps.
type node struct {
	id   string
	idx  int32 // index into Cluster.nodes and Records.nodeNames
	host fleet.HostSpec

	cores   int
	free    int
	waiting waitRing
	cache   *keepalive.Cache

	// resident[fid] is the snapshot bytes held on local disk (0 = absent);
	// lastUsed drives LRU eviction when diskUsed would exceed capacity.
	// Eviction scans fids in ascending order with a strict time comparison,
	// which reproduces the former map's min-(time, name) victim choice
	// because fid order is name order.
	resident []int64
	lastUsed []simtime.Duration
	diskUsed int64

	lastColdSetup []simtime.Duration

	busy        simtime.Duration
	invocations int64
	cold        int64

	// router accumulates this node's share of routing decisions.
	router NodeRouterStats

	draining bool
	alive    bool
}

type queued struct {
	a   workload.ArrivalSpec
	fid int32
	enq simtime.Duration
	// rq / decide are the front-end segments the arrival already paid
	// before reaching the node; route is the routing reason (a routeReasons
	// code). All ride to dispatch so the Record and its budget carry them.
	rq     simtime.Duration
	decide simtime.Duration
	route  uint8
}

// waitRing is a growable FIFO ring of queued arrivals: steady-state
// enqueue/dequeue churn reuses the buffer instead of the reslice-and-append
// pattern that reallocates as the front capacity is abandoned.
type waitRing struct {
	buf  []queued
	head int
	n    int
}

func (r *waitRing) len() int { return r.n }

func (r *waitRing) push(q queued) {
	if r.n == len(r.buf) {
		grown := make([]queued, 2*r.n+4)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
}

func (r *waitRing) pop() queued {
	q := r.buf[r.head]
	r.buf[r.head] = queued{} // release the spec's string reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

// inflight is the node's outstanding work: running plus queued invocations.
func (n *node) inflight() int {
	return n.waiting.len() + (n.cores - n.free)
}

// Record is the decoded (struct) view of one routed invocation's outcome.
// The run stores outcomes columnar (see Records); Record materializes at
// the observer and report boundaries.
type Record struct {
	Function string
	Node     string
	// Level is the input level the invocation ran at (indexes the profile's
	// per-level cost arrays, e.g. for computing inflation over a warm hit).
	Level   int
	Arrival simtime.Duration
	// Route is the routing reason (fleetobs.Reason*: rr, least, affinity,
	// spill, shed).
	Route string
	// RouterQueue is time waiting for the front-end router itself and
	// Decide the routing-decision cost; both are zero unless
	// Config.DecideCost models a non-instant front end.
	RouterQueue simtime.Duration
	Decide      simtime.Duration
	// QueueDelay is time waiting for a core on the routed node.
	QueueDelay simtime.Duration
	// Pull is snapshot-fetch time on a cold start at a node without the
	// snapshot on local disk (zero otherwise).
	Pull  simtime.Duration
	Setup simtime.Duration
	Exec  simtime.Duration
	Cold  bool
}

// Latency is the end-to-end response time.
func (r Record) Latency() simtime.Duration {
	return r.RouterQueue + r.Decide + r.QueueDelay + r.Pull + r.Setup + r.Exec
}

// NodeStats summarizes one node's run.
type NodeStats struct {
	ID          string
	Invocations int64
	ColdStarts  int64
	Busy        simtime.Duration
	Cache       keepalive.Stats
	// Final reports the node was still live at the end of the run.
	Final bool
}

// Report aggregates a cluster run.
type Report struct {
	Records Records
	Horizon simtime.Duration
	Router  RouterStats
	// Pulls / PullTime count snapshot fetches onto node-local stores.
	Pulls    int64
	PullTime simtime.Duration
	// BusyCoreTime accumulates fleet-wide core occupancy (pull+setup+exec).
	BusyCoreTime simtime.Duration
	// ScaleEvents are the autoscaler's decisions in virtual-time order.
	ScaleEvents []ScaleEvent
	// PeakNodes / FinalNodes bracket the fleet size over the run.
	PeakNodes  int
	FinalNodes int
	// Burn is the fleet-wide SLO burn tracker (nil without an SLO).
	Burn *xray.BurnTracker
	// Nodes lists per-node statistics in node-id order.
	Nodes []NodeStats
}

// ColdFraction returns the fraction of invocations that cold-started.
func (r *Report) ColdFraction() float64 {
	n := r.Records.Len()
	if n == 0 {
		return 0
	}
	cold := 0
	for _, c := range r.Records.cold {
		if c {
			cold++
		}
	}
	return float64(cold) / float64(n)
}

// LatencyPercentile returns the p-th percentile end-to-end latency
// (nearest-rank convention).
func (r *Report) LatencyPercentile(p float64) simtime.Duration {
	n := r.Records.Len()
	if n == 0 {
		return 0
	}
	ls := make([]simtime.Duration, n)
	for i := range ls {
		ls[i] = r.Records.Latency(i)
	}
	return stats.NearestRankInPlace(ls, p)
}

// Throughput returns completed invocations per second of virtual time.
func (r *Report) Throughput() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Records.Len()) / r.Horizon.Seconds()
}

// Cluster is one fleet simulation instance.
type Cluster struct {
	cfg Config

	// fnNames is the profiled function set in sorted order; a function's
	// id is its index (so id order is name order — LRU tie-breaks and the
	// Records dictionary rely on that). profs is parallel to fnNames.
	fnNames []string
	fnIdx   map[string]int32
	profs   []FnProfile

	// nodes holds every node ever created, in creation order; the cached
	// index sets below filter it. Node ids ("n01", "n02", ...) follow
	// creation order, so the whole run is reproducible from the seed and
	// config alone.
	nodes  []*node
	nextID int
	rr     int

	heap eventHeap
	seq  uint64
	now  simtime.Duration

	report Report
	burn   *xray.BurnTracker

	// remaining counts pushed-but-not-completed arrivals and exhausted
	// marks the source dry; the autoscaler stops ticking when both say the
	// run is over, so runs terminate.
	remaining int64
	exhausted bool

	// autoscaler deltas since the last tick.
	lastBusy           simtime.Duration
	lastTotal, lastBad int64
	// pending scale marks attach to the next sealed xray budget.
	pendingUp, pendingDown int64

	// routerFree is when the serial front-end router finishes its current
	// decision (only advances when cfg.DecideCost > 0).
	routerFree simtime.Duration

	// Topology caches, rebuilt on node add/drain/retire: routableIdx and
	// liveIdx index into nodes in creation order; topoEpoch invalidates the
	// per-function rendezvous rankings in rankCache.
	topoEpoch   uint64
	routableIdx []int32
	liveIdx     []int32
	rankEpoch   []uint64
	rankCache   [][]int32
	rankW       []uint64 // ranking-sort scratch

	// hasObservers gates materializing a Record for the observer surfaces;
	// without observers the dispatch path only touches columns.
	hasObservers bool
}

// New builds a cluster from measured function profiles (see Profile).
func New(cfg Config, profiles map[string]FnProfile) (*Cluster, error) {
	cfg.Autoscale = cfg.Autoscale.withDefaults(len(cfg.Hosts))
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("cluster: no function profiles")
	}
	c := &Cluster{cfg: cfg, topoEpoch: 1}
	c.fnNames = make([]string, 0, len(profiles))
	for fn := range profiles {
		c.fnNames = append(c.fnNames, fn)
	}
	sort.Strings(c.fnNames)
	c.fnIdx = make(map[string]int32, len(c.fnNames))
	c.profs = make([]FnProfile, len(c.fnNames))
	for i, fn := range c.fnNames {
		c.fnIdx[fn] = int32(i)
		c.profs[i] = profiles[fn]
	}
	c.rankEpoch = make([]uint64, len(c.fnNames))
	c.rankCache = make([][]int32, len(c.fnNames))
	c.report.Records.fnNames = c.fnNames
	c.hasObservers = cfg.XRay != nil || cfg.FleetObs != nil || cfg.Metrics != nil || cfg.Recorder != nil
	for _, h := range cfg.Hosts {
		c.addNode(h)
	}
	if cfg.SLO > 0 {
		c.burn = xray.NewBurnTracker(cfg.SLO, cfg.BurnWindow)
		c.report.Burn = c.burn
	}
	return c, nil
}

// addNode creates and registers one live node.
func (c *Cluster) addNode(h fleet.HostSpec) *node {
	c.nextID++
	n := &node{
		id:            fmt.Sprintf("n%02d", c.nextID),
		idx:           int32(len(c.nodes)),
		host:          h,
		cores:         c.cfg.Cores,
		free:          c.cfg.Cores,
		resident:      make([]int64, len(c.fnNames)),
		lastUsed:      make([]simtime.Duration, len(c.fnNames)),
		lastColdSetup: make([]simtime.Duration, len(c.fnNames)),
		alive:         true,
	}
	n.router.Node = n.id
	// The keep-alive cache spans the node's full tier capacities: warm VMs
	// are what the memory is for.
	cache, err := keepalive.New(h.FastBytes, h.SlowBytes, c.cfg.Cost)
	if err != nil {
		// Config and host specs were validated; a failure here is a
		// programming error.
		panic(err)
	}
	n.cache = cache
	c.nodes = append(c.nodes, n)
	c.report.Records.nodeNames = append(c.report.Records.nodeNames, n.id)
	c.rebuildTopo()
	if live := len(c.liveIdx); live > c.report.PeakNodes {
		c.report.PeakNodes = live
	}
	if m := c.cfg.Metrics; m != nil {
		m.Gauge(telemetry.MetricClusterNodes).Set(int64(len(c.liveIdx)))
	}
	return n
}

// rebuildTopo refreshes the cached live/routable index sets and bumps the
// epoch that invalidates cached rendezvous rankings. Called on every
// topology change (node add, drain start, retirement); between changes the
// routing hot path reuses the caches allocation-free.
func (c *Cluster) rebuildTopo() {
	c.topoEpoch++
	c.routableIdx = c.routableIdx[:0]
	c.liveIdx = c.liveIdx[:0]
	for i, n := range c.nodes {
		if !n.alive {
			continue
		}
		c.liveIdx = append(c.liveIdx, int32(i))
		if !n.draining {
			c.routableIdx = append(c.routableIdx, int32(i))
		}
	}
}

// Run replays a materialized arrival schedule to completion and returns the
// report. The schedule is validated upfront (an arrival for an unprofiled
// function fails before any simulation), then fed through the streaming
// core.
func (c *Cluster) Run(arrivals []workload.ArrivalSpec) (*Report, error) {
	for i := range arrivals {
		if _, ok := c.fnIdx[arrivals[i].Function]; !ok {
			return nil, fmt.Errorf("cluster: arrival for unprofiled function %q", arrivals[i].Function)
		}
	}
	return c.RunStream(workload.SliceSource(arrivals))
}

// RunStream drives the simulation from a pull-based arrival source: at most
// one pending arrival lives in the event heap at a time, so a day-long
// schedule is simulated in O(fleet) memory plus the columnar record log.
// The result is byte-identical to Run on the materialized equivalent (the
// event heap orders arrivals ahead of same-time simulation events, exactly
// as the materialized pre-push did — see the priority comment in heap.go).
// An arrival for an unprofiled function fails the run at pull time.
func (c *Cluster) RunStream(src workload.Source) (*Report, error) {
	if err := c.pullArrival(src); err != nil {
		return nil, err
	}
	if c.cfg.Autoscale.Enabled {
		c.pushEvent(event{at: c.cfg.Autoscale.Tick, kind: evScaleTick, pri: priLoop})
	}
	for c.heap.len() > 0 {
		e := c.heap.pop()
		c.now = e.at
		switch e.kind {
		case evArrival:
			// Replenish the pending arrival before handling this one; the
			// next arrival is strictly later in heap order (same time still
			// sorts after by sequence), so it cannot affect this event.
			if err := c.pullArrival(src); err != nil {
				return nil, err
			}
			if c.cfg.DecideCost > 0 {
				// Serial front end: the decision starts when the router
				// frees up and the arrival lands on its node when the
				// decision completes.
				start := c.now
				if c.routerFree > start {
					start = c.routerFree
				}
				c.routerFree = start + c.cfg.DecideCost
				c.pushEvent(event{at: c.routerFree, kind: evRouted, pri: priLoop, a: e.a, fid: e.fid, rq: start - c.now})
				break
			}
			c.routeArrival(e.a, e.fid, 0)
		case evRouted:
			c.routeArrival(e.a, e.fid, e.rq)
		case evCompletion:
			n := c.nodes[e.node]
			n.free++
			c.burn.Record(c.now, e.latency)
			c.remaining--
			// The horizon is the last completion, not the last event, so a
			// trailing autoscaler tick does not dilute Throughput.
			if c.now > c.report.Horizon {
				c.report.Horizon = c.now
			}
			for n.free > 0 && n.waiting.len() > 0 {
				c.dispatch(n, n.waiting.pop())
			}
		case evScaleTick:
			c.onScaleTick()
			if c.remaining > 0 || !c.exhausted {
				c.pushEvent(event{at: c.now + c.cfg.Autoscale.Tick, kind: evScaleTick, pri: priLoop})
			}
		}
		c.cfg.Recorder.RecordAt(c.now)
		if c.cfg.FleetObs != nil {
			c.cfg.FleetObs.SampleAt(c.now, c.nodeStates)
		}
	}
	for _, n := range c.nodes {
		c.report.Nodes = append(c.report.Nodes, NodeStats{
			ID:          n.id,
			Invocations: n.invocations,
			ColdStarts:  n.cold,
			Busy:        n.busy,
			Cache:       n.cache.Stats(),
			Final:       n.alive,
		})
	}
	c.report.FinalNodes = len(c.liveIdx)
	c.report.Router.PerNode = c.perNodeStats()
	return &c.report, nil
}

// pullArrival moves the source's next arrival into the event heap (no-op
// once the source is dry).
func (c *Cluster) pullArrival(src workload.Source) error {
	if c.exhausted {
		return nil
	}
	a, ok := src.Next()
	if !ok {
		c.exhausted = true
		return nil
	}
	fid, ok := c.fnIdx[a.Function]
	if !ok {
		return fmt.Errorf("cluster: arrival for unprofiled function %q", a.Function)
	}
	c.remaining++
	c.pushEvent(event{at: a.At, kind: evArrival, pri: priArrival, a: a, fid: fid})
	return nil
}

// routeArrival routes one arrival (rq is the front-end wait it already
// paid) and dispatches or enqueues it on the chosen node.
func (c *Cluster) routeArrival(a workload.ArrivalSpec, fid int32, rq simtime.Duration) {
	res := c.route(fid, a.Function)
	hit := c.countRoute(res, fid)
	if f := c.cfg.FleetObs; f != nil {
		f.RouteDecision(fleetobs.Decision{
			At:          c.now,
			Function:    a.Function,
			Node:        res.n.id,
			Reason:      routeReasons[res.reason],
			Hit:         hit,
			RouterQueue: rq,
			Decide:      c.decideCost(),
			Candidates:  res.cands,
		})
	}
	q := queued{a: a, fid: fid, enq: c.now, rq: rq, decide: c.decideCost(), route: res.reason}
	if res.n.free == 0 {
		res.n.waiting.push(q)
	} else {
		c.dispatch(res.n, q)
	}
}

// decideCost is the per-decision front-end cost actually charged (zero for
// the instantaneous default front end).
func (c *Cluster) decideCost() simtime.Duration {
	if c.cfg.DecideCost > 0 {
		return c.cfg.DecideCost
	}
	return 0
}

// nodeStates snapshots every node ever created for the fleet grid, in
// creation (= id) order. Retired nodes keep their row so the heatmap stays
// square over autoscaler churn.
func (c *Cluster) nodeStates() []fleetobs.NodeSample {
	out := make([]fleetobs.NodeSample, 0, len(c.nodes))
	for _, n := range c.nodes {
		s := fleetobs.NodeSample{
			Node:     n.id,
			Cores:    n.cores,
			Alive:    n.alive,
			Draining: n.draining,
		}
		if n.alive {
			fast, slow := n.cache.Occupancy()
			s.Running = n.cores - n.free
			s.Queued = n.waiting.len()
			s.DiskUsed, s.DiskCap = n.diskUsed, c.cfg.DiskBytes
			s.FastUsed, s.FastCap = fast, n.host.FastBytes
			s.SlowUsed, s.SlowCap = slow, n.host.SlowBytes
		}
		out = append(out, s)
	}
	return out
}

func (c *Cluster) pushEvent(e event) {
	e.seq = c.seq
	c.seq++
	c.heap.push(e)
}

// countRoute updates the fleet-wide and per-node router statistics for one
// decision and reports whether the chosen node already held the function.
func (c *Cluster) countRoute(res routeResult, fid int32) bool {
	n := res.n
	c.report.Router.Decisions++
	hit := n.cache.Contains(c.fnNames[fid]) || n.resident[fid] > 0
	if hit {
		c.report.Router.AffinityHits++
	}
	// Spills keeps its original meaning — diverted off the hash-primary —
	// so a shed that happens to land on the primary counts as a shed only.
	spilled := res.reason == routeSpill || (res.reason == routeShed && res.diverted)
	if spilled {
		c.report.Router.Spills++
	}
	if res.reason == routeShed {
		c.report.Router.Sheds++
	}
	n.router.Decisions++
	if hit {
		n.router.AffinityHits++
	}
	if spilled {
		n.router.Spills++
	}
	if res.reason == routeShed {
		n.router.Sheds++
	}
	if m := c.cfg.Metrics; m != nil {
		m.Counter(telemetry.MetricRouterDecisions).Add(1)
		if hit {
			m.Counter(telemetry.MetricRouterAffinity).Add(1)
		}
		if spilled {
			m.Counter(telemetry.MetricRouterSpills).Add(1)
		}
		if res.reason == routeShed {
			m.Counter(telemetry.MetricRouterSheds).Add(1)
		}
	}
	return hit
}

// perNodeStats materializes the per-node router counters in id order,
// including only nodes that were actually routed to.
func (c *Cluster) perNodeStats() []NodeRouterStats {
	out := make([]NodeRouterStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.router.Decisions > 0 {
			out = append(out, n.router)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// dispatch runs one queued invocation on node n starting now.
func (c *Cluster) dispatch(n *node, q queued) {
	n.free--
	a := q.a
	fid := q.fid
	prof := &c.profs[fid]
	lv := int(a.Level)

	var pull, setup, exec simtime.Duration
	var cold bool
	if _, warm := n.cache.Take(a.Function); warm {
		setup = c.cfg.ResumeCost
		exec = prof.WarmExec[lv]
	} else {
		cold = true
		n.cold++
		if n.resident[fid] == 0 {
			pull = c.pullSnapshot(n, fid, prof.SnapshotBytes)
		}
		setup = prof.ColdSetup[lv]
		exec = prof.ColdExec[lv]
		n.lastColdSetup[fid] = setup
	}
	n.lastUsed[fid] = c.now
	n.invocations++

	qd := c.now - q.enq
	work := pull + setup + exec
	finish := c.now + work
	latency := q.rq + q.decide + qd + work
	n.busy += work
	c.report.BusyCoreTime += work
	c.report.Records.push(fid, n.idx, uint8(lv), q.route, cold,
		q.enq, q.rq, q.decide, qd, pull, setup, exec)
	c.pushEvent(event{at: finish, kind: evCompletion, pri: priLoop, node: n.idx, latency: latency})

	if c.hasObservers {
		rec := Record{
			Function:    a.Function,
			Node:        n.id,
			Level:       lv,
			Arrival:     q.enq,
			Route:       routeReasons[q.route],
			RouterQueue: q.rq,
			Decide:      q.decide,
			QueueDelay:  qd,
			Pull:        pull,
			Setup:       setup,
			Exec:        exec,
			Cold:        cold,
		}
		c.cfg.FleetObs.Invocation(n.id, latency, cold)
		c.observeInvocation(n, rec)
	}

	// Keep the finished VM warm on the node's tiers until evicted; the
	// admission happens at dispatch (same convention as sched) so back-to-
	// back arrivals see the warm VM.
	coldSetup := n.lastColdSetup[fid]
	if coldSetup == 0 {
		coldSetup = setup
	}
	n.cache.AdmitQuiet(keepalive.ItemFor(a.Function, prof.FastPages, prof.SlowPages, coldSetup))
}

// pullSnapshot fetches fn's snapshot onto n's local store, evicting LRU
// snapshots to make room, and returns the transfer time.
func (c *Cluster) pullSnapshot(n *node, fid int32, bytes int64) simtime.Duration {
	if bytes > c.cfg.DiskBytes {
		// A snapshot larger than the store streams through without ever
		// becoming resident; every cold start at this node re-pulls.
		return simtime.Duration(bytes * int64(simtime.Second) / c.cfg.PullBytesPerSec)
	}
	for n.diskUsed+bytes > c.cfg.DiskBytes {
		// Victim = minimum (lastUsed, name); the ascending-fid scan with a
		// strict comparison lands on the smallest name among ties because
		// fid order is name order.
		victim := int32(-1)
		var oldest simtime.Duration
		for f := range n.resident {
			if n.resident[f] == 0 {
				continue
			}
			if at := n.lastUsed[f]; victim < 0 || at < oldest {
				victim, oldest = int32(f), at
			}
		}
		if victim < 0 {
			break
		}
		n.diskUsed -= n.resident[victim]
		n.resident[victim] = 0
	}
	n.resident[fid] = bytes
	n.diskUsed += bytes
	c.report.Pulls++
	dur := simtime.Duration(bytes * int64(simtime.Second) / c.cfg.PullBytesPerSec)
	c.report.PullTime += dur
	if m := c.cfg.Metrics; m != nil {
		m.Counter(telemetry.MetricSnapshotPulls).Add(1)
	}
	return dur
}

// observeInvocation lands one dispatched invocation on the telemetry, obs,
// and xray surfaces.
func (c *Cluster) observeInvocation(n *node, rec Record) {
	if m := c.cfg.Metrics; m != nil {
		if rec.Cold {
			m.Counter(telemetry.MetricClusterColdStart).Add(1)
		} else {
			m.Counter(telemetry.MetricClusterWarmStart).Add(1)
		}
	}
	if r := c.cfg.Recorder; r != nil {
		// One heatmap row per (function, node): the fleet dashboard shows
		// where each function's warm state concentrates.
		prof := c.profs[c.fnIdx[rec.Function]]
		var slow []guest.Region
		if prof.SlowPages > 0 {
			slow = []guest.Region{{Start: 0, Pages: prof.SlowPages}}
		}
		cause := "cluster:warm"
		if rec.Cold {
			cause = "cluster:cold"
		}
		r.ObservePlacement(rec.Function+"@"+n.id, slow, prof.FastPages+prof.SlowPages, cause)
	}
	if xr := c.cfg.XRay; xr != nil {
		label := rec.Function + "@" + n.id + "/cluster"
		if c.cfg.XRayTag != "" {
			label += "/" + c.cfg.XRayTag
		}
		// The segments are added in causal order — front-end router, node
		// queue, snapshot pull, then execution — and decompose the
		// independently computed Record.Latency() exactly (zero segments
		// are dropped by Budget.Add), so Sum()==Recorded() stays a real
		// cross-check at fleet scale.
		bud := xray.New(label)
		bud.Add(xray.SegRouterQueue, rec.RouterQueue)
		bud.Add(xray.SegRouterDecide, rec.Decide)
		bud.Add(xray.SegNodeQueue, rec.QueueDelay)
		bud.Add(xray.SegSnapshotPull, rec.Pull)
		if rec.Cold {
			bud.Add(xray.SegExecSetup, rec.Setup)
			bud.Mark("start.cold", 1)
		} else {
			bud.Add(xray.SegExecResume, rec.Setup)
			bud.Mark("start.warm", 1)
		}
		bud.Add(xray.SegExecRun, rec.Exec)
		switch rec.Route {
		case fleetobs.ReasonSpill:
			bud.Mark(xray.MarkRouterSpill, 1)
		case fleetobs.ReasonShed:
			bud.Mark(xray.MarkRouterShed, 1)
		}
		if c.pendingUp > 0 {
			bud.Mark(xray.MarkScaleUp, c.pendingUp)
			c.pendingUp = 0
		}
		if c.pendingDown > 0 {
			bud.Mark(xray.MarkScaleDown, c.pendingDown)
			c.pendingDown = 0
		}
		bud.Seal(rec.Latency())
		xr.Observe(bud)
	}
}
