// Package cluster simulates a fleet of tiered serverless hosts behind a
// front-end router and a virtual-time autoscaler — the layer ROADMAP open
// item 1 asks for above the single-host simulator. Each node owns its own
// cores, tier capacities, keep-alive cache, and local snapshot store;
// invocation costs come from per-function profiles measured once through
// sched.Invoker (the calibrated single-host machinery), so fleet-scale runs
// stay cheap, deterministic, and anchored to the paper's model.
//
// The cluster-level question mirrors TOSS's page-level one: restore latency
// is dominated by where snapshot state already lives, so the router's
// snapshot-affinity policy (rendezvous hashing) is page tiering writ large —
// steer each function to the nodes whose disks and warm caches already hold
// it, and cold starts shrink without any per-node change.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"

	"toss/internal/costmodel"
	"toss/internal/fleet"
	"toss/internal/fleetobs"
	"toss/internal/guest"
	"toss/internal/keepalive"
	"toss/internal/obs"
	"toss/internal/simtime"
	"toss/internal/telemetry"
	"toss/internal/workload"
	"toss/internal/xray"
)

// Config describes the simulated fleet.
type Config struct {
	// Hosts are the initial nodes' per-tier capacities, one entry per node
	// (use fleet.HostSpec.Hosts for a homogeneous fleet). The autoscaler
	// clones specs from this list round-robin when it grows the fleet.
	Hosts []fleet.HostSpec
	// Cores is the number of invocation slots per node.
	Cores int
	// DiskBytes is each node's local snapshot-store capacity; snapshots
	// evict LRU when it fills.
	DiskBytes int64
	// PullBytesPerSec is the bandwidth for fetching a snapshot onto a
	// node that does not hold it locally (charged on the cold path).
	PullBytesPerSec int64
	// ResumeCost is the cost of resuming a kept-alive VM (as in sched).
	ResumeCost simtime.Duration
	// Router selects the balancing policy.
	Router Policy
	// Cost prices the tiers for keep-alive eviction decisions.
	Cost costmodel.Model
	// SLO is the latency objective the burn tracker (and autoscaler)
	// watches; zero disables burn tracking.
	SLO simtime.Duration
	// BurnWindow is the sliding window for the peak burn rate.
	BurnWindow simtime.Duration
	// Autoscale configures the virtual-time autoscaler.
	Autoscale Autoscaler
	// DecideCost models the front end as a serial router that spends this
	// long on every routing decision: arrivals queue when decisions back
	// up, and both waits land in the invocation's budget (router.queue,
	// router.decide) and its end-to-end latency. Zero (the default) keeps
	// the front end instantaneous, byte-identical to the pre-DecideCost
	// model.
	DecideCost simtime.Duration

	// XRay, when set, collects one budget per invocation labeled
	// "<fn>@<node>/cluster[/<XRayTag>]" with causally ordered
	// router.queue / router.decide / snapshot.pull / node.queue / exec.*
	// segments that sum to the record's end-to-end latency, plus
	// router/autoscaler marks.
	XRay *xray.Collector
	// XRayTag, when non-empty, suffixes every budget label so dumps from
	// different fleet shapes (node count, policy, arrival process) diff as
	// distinct cells in tossctl diff.
	XRayTag string
	// FleetObs, when set, receives the run's decision trace — every
	// routing decision with its candidate ranking, every autoscaler
	// action with its triggering signals — plus node-grid samples on the
	// recorder's virtual-time cadence and per-invocation outcomes.
	FleetObs *fleetobs.Recorder
	// Metrics, when set, receives cluster.* counters and gauges.
	Metrics *telemetry.Metrics
	// Recorder, when set, gets per-node placement rows ("<fn>@<node>") and
	// fleet-resize phase events on its timelines.
	Recorder *obs.Recorder
}

// DefaultConfig returns a small fleet of paper hosts: 3 nodes, 20 cores
// each, 64 GB snapshot store, 2 GB/s pull bandwidth, affinity routing, and
// a 250 ms SLO with autoscaling off.
func DefaultConfig(nodes int) Config {
	return Config{
		Hosts:           fleet.PaperHost().Hosts(nodes),
		Cores:           20,
		DiskBytes:       64 << 30,
		PullBytesPerSec: 2 << 30,
		ResumeCost:      500 * simtime.Microsecond,
		Router:          RouteAffinity,
		Cost:            costmodel.Default(),
		SLO:             250 * simtime.Millisecond,
		BurnWindow:      10 * simtime.Second,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := fleet.ValidateFleet(c.Hosts); err != nil {
		return err
	}
	if c.Cores < 1 {
		return fmt.Errorf("cluster: Cores %d < 1", c.Cores)
	}
	if c.DiskBytes <= 0 {
		return fmt.Errorf("cluster: non-positive snapshot store capacity")
	}
	if c.PullBytesPerSec <= 0 {
		return fmt.Errorf("cluster: non-positive pull bandwidth")
	}
	if c.ResumeCost < 0 {
		return fmt.Errorf("cluster: negative resume cost")
	}
	if c.SLO < 0 || c.BurnWindow < 0 {
		return fmt.Errorf("cluster: negative SLO or burn window")
	}
	return c.Autoscale.validate(len(c.Hosts))
}

// node is one simulated host.
type node struct {
	id   string
	host fleet.HostSpec

	cores   int
	free    int
	waiting []queued
	cache   *keepalive.Cache

	// resident maps function -> snapshot bytes held on local disk;
	// lastUsed drives LRU eviction when diskUsed would exceed capacity.
	resident map[string]int64
	lastUsed map[string]simtime.Duration
	diskUsed int64

	lastColdSetup map[string]simtime.Duration

	busy        simtime.Duration
	invocations int64
	cold        int64

	draining bool
	alive    bool
}

type queued struct {
	a   workload.ArrivalSpec
	enq simtime.Duration
	// rq / decide are the front-end segments the arrival already paid
	// before reaching the node; route is the routing reason
	// (fleetobs.Reason*). All ride to dispatch so the Record and its
	// budget carry them.
	rq     simtime.Duration
	decide simtime.Duration
	route  string
}

// inflight is the node's outstanding work: running plus queued invocations.
func (n *node) inflight() int {
	return len(n.waiting) + (n.cores - n.free)
}

// Record is the outcome of one routed invocation.
type Record struct {
	Function string
	Node     string
	// Level is the input level the invocation ran at (indexes the profile's
	// per-level cost arrays, e.g. for computing inflation over a warm hit).
	Level   int
	Arrival simtime.Duration
	// Route is the routing reason (fleetobs.Reason*: rr, least, affinity,
	// spill, shed).
	Route string
	// RouterQueue is time waiting for the front-end router itself and
	// Decide the routing-decision cost; both are zero unless
	// Config.DecideCost models a non-instant front end.
	RouterQueue simtime.Duration
	Decide      simtime.Duration
	// QueueDelay is time waiting for a core on the routed node.
	QueueDelay simtime.Duration
	// Pull is snapshot-fetch time on a cold start at a node without the
	// snapshot on local disk (zero otherwise).
	Pull  simtime.Duration
	Setup simtime.Duration
	Exec  simtime.Duration
	Cold  bool
}

// Latency is the end-to-end response time.
func (r Record) Latency() simtime.Duration {
	return r.RouterQueue + r.Decide + r.QueueDelay + r.Pull + r.Setup + r.Exec
}

// NodeStats summarizes one node's run.
type NodeStats struct {
	ID          string
	Invocations int64
	ColdStarts  int64
	Busy        simtime.Duration
	Cache       keepalive.Stats
	// Final reports the node was still live at the end of the run.
	Final bool
}

// Report aggregates a cluster run.
type Report struct {
	Records []Record
	Horizon simtime.Duration
	Router  RouterStats
	// Pulls / PullTime count snapshot fetches onto node-local stores.
	Pulls    int64
	PullTime simtime.Duration
	// BusyCoreTime accumulates fleet-wide core occupancy (pull+setup+exec).
	BusyCoreTime simtime.Duration
	// ScaleEvents are the autoscaler's decisions in virtual-time order.
	ScaleEvents []ScaleEvent
	// PeakNodes / FinalNodes bracket the fleet size over the run.
	PeakNodes  int
	FinalNodes int
	// Burn is the fleet-wide SLO burn tracker (nil without an SLO).
	Burn *xray.BurnTracker
	// Nodes lists per-node statistics in node-id order.
	Nodes []NodeStats
}

// ColdFraction returns the fraction of invocations that cold-started.
func (r *Report) ColdFraction() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	cold := 0
	for _, rec := range r.Records {
		if rec.Cold {
			cold++
		}
	}
	return float64(cold) / float64(len(r.Records))
}

// LatencyPercentile returns the p-th percentile end-to-end latency.
func (r *Report) LatencyPercentile(p float64) simtime.Duration {
	if len(r.Records) == 0 {
		return 0
	}
	ls := make([]simtime.Duration, len(r.Records))
	for i, rec := range r.Records {
		ls[i] = rec.Latency()
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(p / 100 * float64(len(ls)-1))
	return ls[idx]
}

// Throughput returns completed invocations per second of virtual time.
func (r *Report) Throughput() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(len(r.Records)) / r.Horizon.Seconds()
}

// event is one entry in the fleet-wide priority queue.
type event struct {
	at   simtime.Duration
	kind eventKind
	seq  int64 // tie-breaker for determinism
	a    workload.ArrivalSpec
	n    *node
	// latency rides on completions so the burn tracker is fed in
	// completion-time order (its Record contract).
	latency simtime.Duration
	// rq rides on evRouted: time the arrival waited for the front-end
	// router before its decision started.
	rq simtime.Duration
}

type eventKind int

const (
	evArrival eventKind = iota
	// evRouted is an arrival whose routing decision just completed (only
	// used when Config.DecideCost models a non-instant front end).
	evRouted
	evCompletion
	evScaleTick
)

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Cluster is one fleet simulation instance.
type Cluster struct {
	cfg      Config
	profiles map[string]FnProfile

	// nodes holds every node ever created, in creation order; live/routable
	// filter it. Node ids ("n01", "n02", ...) follow creation order, so the
	// whole run is reproducible from the seed and config alone.
	nodes  []*node
	nextID int
	rr     int

	queue eventQueue
	seq   int64
	now   simtime.Duration

	report Report
	burn   *xray.BurnTracker

	// outstanding counts arrivals not yet completed; the autoscaler stops
	// ticking when it reaches zero so runs terminate.
	outstanding int64

	// autoscaler deltas since the last tick.
	lastBusy           simtime.Duration
	lastTotal, lastBad int64
	// pending scale marks attach to the next sealed xray budget.
	pendingUp, pendingDown int64

	// routerFree is when the serial front-end router finishes its current
	// decision (only advances when cfg.DecideCost > 0).
	routerFree simtime.Duration
	// routerByNode accumulates per-node router counters for the report.
	routerByNode map[string]*NodeRouterStats
}

// New builds a cluster from measured function profiles (see Profile).
func New(cfg Config, profiles map[string]FnProfile) (*Cluster, error) {
	cfg.Autoscale = cfg.Autoscale.withDefaults(len(cfg.Hosts))
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("cluster: no function profiles")
	}
	c := &Cluster{cfg: cfg, profiles: profiles, routerByNode: make(map[string]*NodeRouterStats)}
	for _, h := range cfg.Hosts {
		c.addNode(h)
	}
	if cfg.SLO > 0 {
		c.burn = xray.NewBurnTracker(cfg.SLO, cfg.BurnWindow)
		c.report.Burn = c.burn
	}
	return c, nil
}

// addNode creates and registers one live node.
func (c *Cluster) addNode(h fleet.HostSpec) *node {
	c.nextID++
	n := &node{
		id:            fmt.Sprintf("n%02d", c.nextID),
		host:          h,
		cores:         c.cfg.Cores,
		free:          c.cfg.Cores,
		resident:      make(map[string]int64),
		lastUsed:      make(map[string]simtime.Duration),
		lastColdSetup: make(map[string]simtime.Duration),
		alive:         true,
	}
	// The keep-alive cache spans the node's full tier capacities: warm VMs
	// are what the memory is for.
	cache, err := keepalive.New(h.FastBytes, h.SlowBytes, c.cfg.Cost)
	if err != nil {
		// Config and host specs were validated; a failure here is a
		// programming error.
		panic(err)
	}
	n.cache = cache
	c.nodes = append(c.nodes, n)
	if live := len(c.live()); live > c.report.PeakNodes {
		c.report.PeakNodes = live
	}
	if m := c.cfg.Metrics; m != nil {
		m.Gauge(telemetry.MetricClusterNodes).Set(int64(len(c.live())))
	}
	return n
}

// live returns the nodes still part of the fleet, in creation order.
func (c *Cluster) live() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n)
		}
	}
	return out
}

// routable returns the live nodes accepting new traffic.
func (c *Cluster) routable() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive && !n.draining {
			out = append(out, n)
		}
	}
	return out
}

// Run replays the arrival schedule to completion and returns the report.
func (c *Cluster) Run(arrivals []workload.ArrivalSpec) (*Report, error) {
	for _, a := range arrivals {
		if _, ok := c.profiles[a.Function]; !ok {
			return nil, fmt.Errorf("cluster: arrival for unprofiled function %q", a.Function)
		}
		c.push(&event{at: a.At, kind: evArrival, a: a})
	}
	c.outstanding = int64(len(arrivals))
	if c.cfg.Autoscale.Enabled {
		c.push(&event{at: c.cfg.Autoscale.Tick, kind: evScaleTick})
	}
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*event)
		c.now = e.at
		switch e.kind {
		case evArrival:
			if c.cfg.DecideCost > 0 {
				// Serial front end: the decision starts when the router
				// frees up and the arrival lands on its node when the
				// decision completes.
				start := c.now
				if c.routerFree > start {
					start = c.routerFree
				}
				c.routerFree = start + c.cfg.DecideCost
				c.push(&event{at: c.routerFree, kind: evRouted, a: e.a, rq: start - c.now})
				break
			}
			c.routeArrival(e.a, 0)
		case evRouted:
			c.routeArrival(e.a, e.rq)
		case evCompletion:
			e.n.free++
			c.burn.Record(c.now, e.latency)
			c.outstanding--
			// The horizon is the last completion, not the last event, so a
			// trailing autoscaler tick does not dilute Throughput.
			if c.now > c.report.Horizon {
				c.report.Horizon = c.now
			}
			for e.n.free > 0 && len(e.n.waiting) > 0 {
				q := e.n.waiting[0]
				e.n.waiting = e.n.waiting[1:]
				c.dispatch(e.n, q)
			}
		case evScaleTick:
			c.onScaleTick()
			if c.outstanding > 0 {
				c.push(&event{at: c.now + c.cfg.Autoscale.Tick, kind: evScaleTick})
			}
		}
		c.cfg.Recorder.RecordAt(c.now)
		if c.cfg.FleetObs != nil {
			c.cfg.FleetObs.SampleAt(c.now, c.nodeStates)
		}
	}
	for _, n := range c.nodes {
		c.report.Nodes = append(c.report.Nodes, NodeStats{
			ID:          n.id,
			Invocations: n.invocations,
			ColdStarts:  n.cold,
			Busy:        n.busy,
			Cache:       n.cache.Stats(),
			Final:       n.alive,
		})
	}
	c.report.FinalNodes = len(c.live())
	c.report.Router.PerNode = c.perNodeStats()
	return &c.report, nil
}

// routeArrival routes one arrival (rq is the front-end wait it already
// paid) and dispatches or enqueues it on the chosen node.
func (c *Cluster) routeArrival(a workload.ArrivalSpec, rq simtime.Duration) {
	res := c.route(a.Function)
	hit := c.countRoute(res, a.Function)
	if f := c.cfg.FleetObs; f != nil {
		f.RouteDecision(fleetobs.Decision{
			At:          c.now,
			Function:    a.Function,
			Node:        res.n.id,
			Reason:      res.reason,
			Hit:         hit,
			RouterQueue: rq,
			Decide:      c.decideCost(),
			Candidates:  res.cands,
		})
	}
	q := queued{a: a, enq: c.now, rq: rq, decide: c.decideCost(), route: res.reason}
	if res.n.free == 0 {
		res.n.waiting = append(res.n.waiting, q)
	} else {
		c.dispatch(res.n, q)
	}
}

// decideCost is the per-decision front-end cost actually charged (zero for
// the instantaneous default front end).
func (c *Cluster) decideCost() simtime.Duration {
	if c.cfg.DecideCost > 0 {
		return c.cfg.DecideCost
	}
	return 0
}

// nodeStates snapshots every node ever created for the fleet grid, in
// creation (= id) order. Retired nodes keep their row so the heatmap stays
// square over autoscaler churn.
func (c *Cluster) nodeStates() []fleetobs.NodeSample {
	out := make([]fleetobs.NodeSample, 0, len(c.nodes))
	for _, n := range c.nodes {
		s := fleetobs.NodeSample{
			Node:     n.id,
			Cores:    n.cores,
			Alive:    n.alive,
			Draining: n.draining,
		}
		if n.alive {
			fast, slow := n.cache.Occupancy()
			s.Running = n.cores - n.free
			s.Queued = len(n.waiting)
			s.DiskUsed, s.DiskCap = n.diskUsed, c.cfg.DiskBytes
			s.FastUsed, s.FastCap = fast, n.host.FastBytes
			s.SlowUsed, s.SlowCap = slow, n.host.SlowBytes
		}
		out = append(out, s)
	}
	return out
}

func (c *Cluster) push(e *event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.queue, e)
}

// countRoute updates the fleet-wide and per-node router statistics for one
// decision and reports whether the chosen node already held the function.
func (c *Cluster) countRoute(res routeResult, fn string) bool {
	n := res.n
	c.report.Router.Decisions++
	hit := n.cache.Contains(fn) || n.resident[fn] > 0
	if hit {
		c.report.Router.AffinityHits++
	}
	// Spills keeps its original meaning — diverted off the hash-primary —
	// so a shed that happens to land on the primary counts as a shed only.
	spilled := res.reason == fleetobs.ReasonSpill || (res.reason == fleetobs.ReasonShed && res.diverted)
	if spilled {
		c.report.Router.Spills++
	}
	if res.reason == fleetobs.ReasonShed {
		c.report.Router.Sheds++
	}
	pn := c.routerByNode[n.id]
	if pn == nil {
		pn = &NodeRouterStats{Node: n.id}
		c.routerByNode[n.id] = pn
	}
	pn.Decisions++
	if hit {
		pn.AffinityHits++
	}
	if spilled {
		pn.Spills++
	}
	if res.reason == fleetobs.ReasonShed {
		pn.Sheds++
	}
	if m := c.cfg.Metrics; m != nil {
		m.Counter(telemetry.MetricRouterDecisions).Add(1)
		if hit {
			m.Counter(telemetry.MetricRouterAffinity).Add(1)
		}
		if spilled {
			m.Counter(telemetry.MetricRouterSpills).Add(1)
		}
		if res.reason == fleetobs.ReasonShed {
			m.Counter(telemetry.MetricRouterSheds).Add(1)
		}
	}
	return hit
}

// perNodeStats materializes the per-node router counters in id order.
func (c *Cluster) perNodeStats() []NodeRouterStats {
	out := make([]NodeRouterStats, 0, len(c.routerByNode))
	for _, pn := range c.routerByNode {
		out = append(out, *pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// dispatch runs one queued invocation on node n starting now.
func (c *Cluster) dispatch(n *node, q queued) {
	n.free--
	a := q.a
	prof := c.profiles[a.Function]
	lv := int(a.Level)

	rec := Record{
		Function:    a.Function,
		Node:        n.id,
		Level:       lv,
		Arrival:     q.enq,
		Route:       q.route,
		RouterQueue: q.rq,
		Decide:      q.decide,
		QueueDelay:  c.now - q.enq,
	}
	if _, hit := n.cache.Take(a.Function); hit {
		rec.Setup = c.cfg.ResumeCost
		rec.Exec = prof.WarmExec[lv]
	} else {
		rec.Cold = true
		n.cold++
		if n.resident[a.Function] == 0 {
			rec.Pull = c.pullSnapshot(n, a.Function, prof.SnapshotBytes)
		}
		rec.Setup = prof.ColdSetup[lv]
		rec.Exec = prof.ColdExec[lv]
		n.lastColdSetup[a.Function] = rec.Setup
	}
	n.lastUsed[a.Function] = c.now
	n.invocations++

	work := rec.Pull + rec.Setup + rec.Exec
	finish := c.now + work
	n.busy += work
	c.report.BusyCoreTime += work
	c.report.Records = append(c.report.Records, rec)
	c.push(&event{at: finish, kind: evCompletion, n: n, latency: rec.Latency()})

	c.cfg.FleetObs.Invocation(n.id, rec.Latency(), rec.Cold)
	c.observeInvocation(n, rec)

	// Keep the finished VM warm on the node's tiers until evicted; the
	// admission happens at dispatch (same convention as sched) so back-to-
	// back arrivals see the warm VM.
	cold := n.lastColdSetup[a.Function]
	if cold == 0 {
		cold = rec.Setup
	}
	n.cache.Admit(keepalive.ItemFor(a.Function, prof.FastPages, prof.SlowPages, cold))
}

// pullSnapshot fetches fn's snapshot onto n's local store, evicting LRU
// snapshots to make room, and returns the transfer time.
func (c *Cluster) pullSnapshot(n *node, fn string, bytes int64) simtime.Duration {
	if bytes > c.cfg.DiskBytes {
		// A snapshot larger than the store streams through without ever
		// becoming resident; every cold start at this node re-pulls.
		return simtime.Duration(bytes * int64(simtime.Second) / c.cfg.PullBytesPerSec)
	}
	for n.diskUsed+bytes > c.cfg.DiskBytes {
		victim := ""
		var oldest simtime.Duration
		for name := range n.resident {
			at := n.lastUsed[name]
			if victim == "" || at < oldest || (at == oldest && name < victim) {
				victim, oldest = name, at
			}
		}
		if victim == "" {
			break
		}
		n.diskUsed -= n.resident[victim]
		delete(n.resident, victim)
	}
	n.resident[fn] = bytes
	n.diskUsed += bytes
	c.report.Pulls++
	dur := simtime.Duration(bytes * int64(simtime.Second) / c.cfg.PullBytesPerSec)
	c.report.PullTime += dur
	if m := c.cfg.Metrics; m != nil {
		m.Counter(telemetry.MetricSnapshotPulls).Add(1)
	}
	return dur
}

// observeInvocation lands one dispatched invocation on the telemetry, obs,
// and xray surfaces.
func (c *Cluster) observeInvocation(n *node, rec Record) {
	if m := c.cfg.Metrics; m != nil {
		if rec.Cold {
			m.Counter(telemetry.MetricClusterColdStart).Add(1)
		} else {
			m.Counter(telemetry.MetricClusterWarmStart).Add(1)
		}
	}
	if r := c.cfg.Recorder; r != nil {
		// One heatmap row per (function, node): the fleet dashboard shows
		// where each function's warm state concentrates.
		var slow []guest.Region
		if prof := c.profiles[rec.Function]; prof.SlowPages > 0 {
			slow = []guest.Region{{Start: 0, Pages: prof.SlowPages}}
		}
		prof := c.profiles[rec.Function]
		cause := "cluster:warm"
		if rec.Cold {
			cause = "cluster:cold"
		}
		r.ObservePlacement(rec.Function+"@"+n.id, slow, prof.FastPages+prof.SlowPages, cause)
	}
	if xr := c.cfg.XRay; xr != nil {
		label := rec.Function + "@" + n.id + "/cluster"
		if c.cfg.XRayTag != "" {
			label += "/" + c.cfg.XRayTag
		}
		// The segments are added in causal order — front-end router, node
		// queue, snapshot pull, then execution — and decompose the
		// independently computed Record.Latency() exactly (zero segments
		// are dropped by Budget.Add), so Sum()==Recorded() stays a real
		// cross-check at fleet scale.
		bud := xray.New(label)
		bud.Add(xray.SegRouterQueue, rec.RouterQueue)
		bud.Add(xray.SegRouterDecide, rec.Decide)
		bud.Add(xray.SegNodeQueue, rec.QueueDelay)
		bud.Add(xray.SegSnapshotPull, rec.Pull)
		if rec.Cold {
			bud.Add(xray.SegExecSetup, rec.Setup)
			bud.Mark("start.cold", 1)
		} else {
			bud.Add(xray.SegExecResume, rec.Setup)
			bud.Mark("start.warm", 1)
		}
		bud.Add(xray.SegExecRun, rec.Exec)
		switch rec.Route {
		case fleetobs.ReasonSpill:
			bud.Mark(xray.MarkRouterSpill, 1)
		case fleetobs.ReasonShed:
			bud.Mark(xray.MarkRouterShed, 1)
		}
		if c.pendingUp > 0 {
			bud.Mark(xray.MarkScaleUp, c.pendingUp)
			c.pendingUp = 0
		}
		if c.pendingDown > 0 {
			bud.Mark(xray.MarkScaleDown, c.pendingDown)
			c.pendingDown = 0
		}
		bud.Seal(rec.Latency())
		xr.Observe(bud)
	}
}
