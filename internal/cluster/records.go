package cluster

import (
	"sort"

	"toss/internal/simtime"
)

// Records is the run's per-invocation outcome log in columnar
// (struct-of-arrays) form. A million-invocation run stores thirteen dense
// parallel slices — function and node interned to small ints, level and
// routing reason as single bytes — instead of a million ~120-byte Record
// structs full of repeated strings. Consumers that want the struct view
// (report rendering, ext9's decode boundary, the faasim CLI) call At(i),
// which materializes one Record lazily; hot aggregation paths read the
// columns they need via the typed accessors and never decode at all.
type Records struct {
	// fnNames / nodeNames are the interning dictionaries: fnNames is the
	// profiled function set in sorted order (so function-id order is name
	// order), nodeNames every node ever created in creation (= id) order.
	fnNames   []string
	nodeNames []string

	fn    []int32
	node  []int32
	level []uint8
	route []uint8
	cold  []bool

	arrival     []simtime.Duration
	routerQueue []simtime.Duration
	decide      []simtime.Duration
	queueDelay  []simtime.Duration
	pull        []simtime.Duration
	setup       []simtime.Duration
	exec        []simtime.Duration
}

// Len returns the number of recorded invocations.
func (r *Records) Len() int { return len(r.fn) }

// At decodes invocation i into the struct view.
func (r *Records) At(i int) Record {
	return Record{
		Function:    r.fnNames[r.fn[i]],
		Node:        r.nodeNames[r.node[i]],
		Level:       int(r.level[i]),
		Arrival:     r.arrival[i],
		Route:       routeReasons[r.route[i]],
		RouterQueue: r.routerQueue[i],
		Decide:      r.decide[i],
		QueueDelay:  r.queueDelay[i],
		Pull:        r.pull[i],
		Setup:       r.setup[i],
		Exec:        r.exec[i],
		Cold:        r.cold[i],
	}
}

// Latency returns invocation i's end-to-end response time without decoding.
func (r *Records) Latency(i int) simtime.Duration {
	return r.routerQueue[i] + r.decide[i] + r.queueDelay[i] + r.pull[i] + r.setup[i] + r.exec[i]
}

// Arrival returns invocation i's arrival time.
func (r *Records) Arrival(i int) simtime.Duration { return r.arrival[i] }

// Cold reports whether invocation i cold-started.
func (r *Records) Cold(i int) bool { return r.cold[i] }

// Level returns invocation i's input level.
func (r *Records) Level(i int) int { return int(r.level[i]) }

// Function returns invocation i's function name.
func (r *Records) Function(i int) string { return r.fnNames[r.fn[i]] }

// Node returns invocation i's node id.
func (r *Records) Node(i int) string { return r.nodeNames[r.node[i]] }

// push appends one invocation. Amortized allocation-free: thirteen slice
// appends that each reallocate O(log n) times over a run.
func (r *Records) push(fid, node int32, level, route uint8, cold bool,
	arrival, rq, decide, qd, pull, setup, exec simtime.Duration) {
	r.fn = append(r.fn, fid)
	r.node = append(r.node, node)
	r.level = append(r.level, level)
	r.route = append(r.route, route)
	r.cold = append(r.cold, cold)
	r.arrival = append(r.arrival, arrival)
	r.routerQueue = append(r.routerQueue, rq)
	r.decide = append(r.decide, decide)
	r.queueDelay = append(r.queueDelay, qd)
	r.pull = append(r.pull, pull)
	r.setup = append(r.setup, setup)
	r.exec = append(r.exec, exec)
}

// Completion is one finished invocation in completion-time order — the
// nondecreasing virtual-time feed shape insight's alert rules replay.
type Completion struct {
	// At is the completion time: arrival plus end-to-end latency.
	At simtime.Duration
	// Latency is the end-to-end response time.
	Latency simtime.Duration
	// Function / Level identify the invocation's profile cell.
	Function string
	Level    int
	// Cold reports whether the invocation cold-started.
	Cold bool
}

// Completions returns every recorded invocation sorted by completion time,
// ties broken by record order, so replaying the slice feeds virtual time
// forward deterministically. Purely derived from the columnar log: calling
// it cannot affect a run.
func (r *Records) Completions() []Completion {
	out := make([]Completion, r.Len())
	for i := range out {
		lat := r.Latency(i)
		out[i] = Completion{
			At:       r.arrival[i] + lat,
			Latency:  lat,
			Function: r.fnNames[r.fn[i]],
			Level:    int(r.level[i]),
			Cold:     r.cold[i],
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
