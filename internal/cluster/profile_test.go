package cluster

import (
	"testing"

	"toss/internal/sched"
)

// TestProfileMeasures runs the real measurement path (sched.Invoker over
// the microVM machinery) for one function under TOSS and DRAM and checks
// the profile shapes: steady state reached, tiered footprints for TOSS,
// all-fast for DRAM, warm execution never above cold end-to-end cost, and
// byte-identical numbers on re-measurement.
func TestProfileMeasures(t *testing.T) {
	base := sched.DefaultConfig() // ConvergenceWindow 12, like the suite

	tossCfg := base
	tossCfg.Mechanism = sched.MechTOSS
	toss, err := Profile(tossCfg, []string{"json_load_dump"})
	if err != nil {
		t.Fatal(err)
	}
	p := toss["json_load_dump"]
	if p.Warmups == 0 {
		t.Error("TOSS profile needed no warm-ups — convergence cannot be instant")
	}
	// The optimizer may legally place *all* pages in the slow tier when
	// the slowdown stays acceptable, so only the slow side is guaranteed.
	if p.SlowPages <= 0 {
		t.Errorf("TOSS warm footprint (%d fast, %d slow) keeps nothing in the slow tier", p.FastPages, p.SlowPages)
	}
	if p.SnapshotBytes <= 0 {
		t.Error("zero snapshot size")
	}
	for lv := 0; lv < 4; lv++ {
		if p.ColdSetup[lv] <= 0 || p.ColdExec[lv] <= 0 || p.WarmExec[lv] <= 0 {
			t.Fatalf("level %d has non-positive costs: %+v", lv, p)
		}
		if p.WarmExec[lv] >= p.ColdSetup[lv]+p.ColdExec[lv] {
			t.Errorf("level %d warm exec %v not below cold setup+exec %v",
				lv, p.WarmExec[lv], p.ColdSetup[lv]+p.ColdExec[lv])
		}
	}

	dramCfg := base
	dramCfg.Mechanism = sched.MechDRAM
	dram, err := Profile(dramCfg, []string{"json_load_dump"})
	if err != nil {
		t.Fatal(err)
	}
	d := dram["json_load_dump"]
	if d.SlowPages != 0 {
		t.Errorf("DRAM warm footprint has %d slow pages; must be all-fast", d.SlowPages)
	}
	if d.FastPages <= 0 {
		t.Error("DRAM warm footprint empty")
	}

	// Profiles must be reproducible from the config alone.
	again, err := Profile(tossCfg, []string{"json_load_dump"})
	if err != nil {
		t.Fatal(err)
	}
	if again["json_load_dump"] != p {
		t.Errorf("re-measured TOSS profile differs:\n first %+v\nsecond %+v", p, again["json_load_dump"])
	}
}
