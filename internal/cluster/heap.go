package cluster

import (
	"toss/internal/simtime"

	"toss/internal/workload"
)

// event is one entry in the fleet-wide priority queue. Events are plain
// values stored inline in the heap's backing slice: no per-push pointer
// allocation, no interface boxing through container/heap, and the backing
// array is reused across pushes and pops (which subsumes a free-list — a
// popped slot is overwritten by the next push).
type event struct {
	at  simtime.Duration
	seq uint64
	a   workload.ArrivalSpec
	// latency rides on completions so the burn tracker is fed in
	// completion-time order (its Record contract).
	latency simtime.Duration
	// rq rides on evRouted: time the arrival waited for the front-end
	// router before its decision started.
	rq simtime.Duration
	// fid is the arrival's interned function id (evArrival / evRouted).
	fid int32
	// node indexes Cluster.nodes on completions.
	node int32
	kind uint8
	pri  uint8
}

const (
	evArrival uint8 = iota
	// evRouted is an arrival whose routing decision just completed (only
	// used when Config.DecideCost models a non-instant front end).
	evRouted
	evCompletion
	evScaleTick
)

// Event priorities order same-time events. The materialized core pushed
// every arrival before any simulation event, so arrivals held the lowest
// sequence numbers and always popped ahead of same-time loop events; the
// streaming core pushes arrivals lazily, so that invariant is carried by an
// explicit priority instead: arrivals at priArrival, everything else at
// priLoop. Within a priority class the monotone sequence number preserves
// push order, and cross-class comparisons never reach the sequence number —
// which is exactly what makes lazy arrival injection byte-identical to the
// push-everything-upfront schedule.
const (
	priArrival uint8 = iota
	priLoop
)

// eventLess orders the heap by (at, pri, seq).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// eventHeap is a slice-backed 4-ary min-heap. 4-ary halves the tree depth
// of a binary heap, and with ~96-byte value entries the four children of a
// node span two cache lines, so sift-down touches less memory per level
// than the pointer-chasing container/heap equivalent.
type eventHeap struct {
	es []event
}

func (h *eventHeap) len() int { return len(h.es) }

func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&h.es[i], &h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es[last] = event{} // drop the stale copy's string reference
	h.es = h.es[:last]
	i := 0
	for {
		min := i
		base := 4*i + 1
		end := base + 4
		if end > last {
			end = last
		}
		for c := base; c < end; c++ {
			if eventLess(&h.es[c], &h.es[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h.es[i], h.es[min] = h.es[min], h.es[i]
		i = min
	}
	return top
}
