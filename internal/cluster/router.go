package cluster

import (
	"fmt"
	"hash/fnv"

	"toss/internal/fleetobs"
)

// Policy selects the front-end routing policy.
type Policy int

const (
	// RouteRoundRobin cycles arrivals over live nodes in id order.
	RouteRoundRobin Policy = iota
	// RouteLeastLoaded picks the node with the fewest in-flight plus
	// queued invocations (ties break by node id).
	RouteLeastLoaded
	// RouteAffinity steers each function to its rendezvous-hash node so
	// restores land where the snapshot and warm VMs already live, spilling
	// down the hash ranking when the primary is overloaded.
	RouteAffinity
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RouteRoundRobin:
		return "rr"
	case RouteLeastLoaded:
		return "least"
	case RouteAffinity:
		return "affinity"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies returns every routing policy in canonical order.
func Policies() []Policy { return []Policy{RouteRoundRobin, RouteLeastLoaded, RouteAffinity} }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router policy %q (want rr, least, or affinity)", s)
}

// RouterStats counts front-end routing decisions.
type RouterStats struct {
	// Decisions is the total number of routed arrivals.
	Decisions int64
	// AffinityHits counts routes that landed on a node already holding the
	// function warm or its snapshot on local disk (any policy).
	AffinityHits int64
	// Spills counts affinity routes diverted off the hash-primary node
	// because it was overloaded.
	Spills int64
	// Sheds counts affinity routes where every candidate was overloaded
	// and the arrival went to the least-loaded node of the ranking.
	Sheds int64
	// PerNode breaks the counters down by the routed node, in id order.
	PerNode []NodeRouterStats
}

// NodeRouterStats is one node's share of the router's decisions.
type NodeRouterStats struct {
	Node         string
	Decisions    int64
	AffinityHits int64
	Spills       int64
	Sheds        int64
}

// routeResult is one routing decision: the chosen node, the reason
// (fleetobs.Reason*), whether the choice was diverted off the affinity
// primary, and — only when a fleetobs recorder is attached — the ranked
// candidate list the router considered.
type routeResult struct {
	n        *node
	reason   string
	diverted bool
	cands    []fleetobs.Candidate
}

// candidates snapshots the considered nodes for the decision trace; nil
// unless a fleetobs recorder is attached (the hot path stays
// allocation-free without one).
func (c *Cluster) candidates(fn string, nodes []*node) []fleetobs.Candidate {
	if c.cfg.FleetObs == nil {
		return nil
	}
	out := make([]fleetobs.Candidate, len(nodes))
	for i, nd := range nodes {
		out[i] = fleetobs.Candidate{
			Node:     nd.id,
			Inflight: nd.inflight(),
			Hit:      nd.cache.Contains(fn) || nd.resident[fn] > 0,
		}
	}
	return out
}

// route picks the target node for one arrival among the live, non-draining
// nodes. It never returns a nil node while the cluster has at least one
// routable node.
func (c *Cluster) route(fn string) routeResult {
	cands := c.routable()
	if len(cands) == 0 {
		// Every node is draining (autoscaler pathology); fall back to all
		// live nodes so traffic is never dropped.
		cands = c.live()
	}
	switch c.cfg.Router {
	case RouteLeastLoaded:
		best := cands[0]
		for _, nd := range cands[1:] {
			if nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return routeResult{n: best, reason: fleetobs.ReasonLeastLoaded, cands: c.candidates(fn, cands)}
	case RouteAffinity:
		ranked := rendezvousRank(fn, cands)
		rc := c.candidates(fn, ranked)
		for i, nd := range ranked {
			if !c.overloaded(nd) {
				reason := fleetobs.ReasonAffinity
				if i > 0 {
					reason = fleetobs.ReasonSpill
				}
				return routeResult{n: nd, reason: reason, diverted: i > 0, cands: rc}
			}
		}
		// All overloaded: shed to the least-loaded of the ranked set so the
		// hot spot does not collapse a single node.
		best := ranked[0]
		for _, nd := range ranked[1:] {
			if nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return routeResult{n: best, reason: fleetobs.ReasonShed, diverted: best != ranked[0], cands: rc}
	default: // RouteRoundRobin
		n := cands[c.rr%len(cands)]
		c.rr++
		return routeResult{n: n, reason: fleetobs.ReasonRoundRobin, cands: c.candidates(fn, cands)}
	}
}

// overloaded reports whether a node should be skipped by affinity spill: no
// free core means a routed arrival would queue for a full invocation's
// remaining run time, which dwarfs the cold-start cost of running it on the
// next node in the hash ranking (where the spilled function then builds
// secondary warm state).
func (c *Cluster) overloaded(n *node) bool {
	return n.inflight() >= c.cfg.Cores
}

// rendezvousRank orders nodes by highest-random-weight hash for fn. Every
// front-end computes the same ranking independently of fleet-change order,
// and a node join/leave only moves the functions that hashed to it — the
// property that keeps snapshot affinity stable while the autoscaler works.
func rendezvousRank(fn string, nodes []*node) []*node {
	type scored struct {
		n *node
		w uint64
	}
	s := make([]scored, len(nodes))
	for i, nd := range nodes {
		h := fnv.New64a()
		h.Write([]byte(fn))
		h.Write([]byte{'|'})
		h.Write([]byte(nd.id))
		s[i] = scored{nd, h.Sum64()}
	}
	// Insertion sort by weight desc, id asc on ties: node counts are small
	// and the ranking must be deterministic.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].w > s[j-1].w || (s[j].w == s[j-1].w && s[j].n.id < s[j-1].n.id)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]*node, len(s))
	for i, sc := range s {
		out[i] = sc.n
	}
	return out
}
