package cluster

import (
	"fmt"
	"hash/fnv"
)

// Policy selects the front-end routing policy.
type Policy int

const (
	// RouteRoundRobin cycles arrivals over live nodes in id order.
	RouteRoundRobin Policy = iota
	// RouteLeastLoaded picks the node with the fewest in-flight plus
	// queued invocations (ties break by node id).
	RouteLeastLoaded
	// RouteAffinity steers each function to its rendezvous-hash node so
	// restores land where the snapshot and warm VMs already live, spilling
	// down the hash ranking when the primary is overloaded.
	RouteAffinity
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RouteRoundRobin:
		return "rr"
	case RouteLeastLoaded:
		return "least"
	case RouteAffinity:
		return "affinity"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies returns every routing policy in canonical order.
func Policies() []Policy { return []Policy{RouteRoundRobin, RouteLeastLoaded, RouteAffinity} }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router policy %q (want rr, least, or affinity)", s)
}

// RouterStats counts front-end routing decisions.
type RouterStats struct {
	// Decisions is the total number of routed arrivals.
	Decisions int64
	// AffinityHits counts routes that landed on a node already holding the
	// function warm or its snapshot on local disk (any policy).
	AffinityHits int64
	// Spills counts affinity routes diverted off the hash-primary node
	// because it was overloaded.
	Spills int64
}

// route picks the target node for one arrival among the live, non-draining
// nodes. It never returns nil while the cluster has at least one routable
// node; spilled reports an affinity diversion.
func (c *Cluster) route(fn string) (n *node, spilled bool) {
	cands := c.routable()
	if len(cands) == 0 {
		// Every node is draining (autoscaler pathology); fall back to all
		// live nodes so traffic is never dropped.
		cands = c.live()
	}
	switch c.cfg.Router {
	case RouteLeastLoaded:
		best := cands[0]
		for _, nd := range cands[1:] {
			if nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return best, false
	case RouteAffinity:
		ranked := rendezvousRank(fn, cands)
		for i, nd := range ranked {
			if !c.overloaded(nd) {
				return nd, i > 0
			}
		}
		// All overloaded: shed to the least-loaded of the ranked set so the
		// hot spot does not collapse a single node.
		best := ranked[0]
		for _, nd := range ranked[1:] {
			if nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return best, best != ranked[0]
	default: // RouteRoundRobin
		n := cands[c.rr%len(cands)]
		c.rr++
		return n, false
	}
}

// overloaded reports whether a node should be skipped by affinity spill: no
// free core means a routed arrival would queue for a full invocation's
// remaining run time, which dwarfs the cold-start cost of running it on the
// next node in the hash ranking (where the spilled function then builds
// secondary warm state).
func (c *Cluster) overloaded(n *node) bool {
	return n.inflight() >= c.cfg.Cores
}

// rendezvousRank orders nodes by highest-random-weight hash for fn. Every
// front-end computes the same ranking independently of fleet-change order,
// and a node join/leave only moves the functions that hashed to it — the
// property that keeps snapshot affinity stable while the autoscaler works.
func rendezvousRank(fn string, nodes []*node) []*node {
	type scored struct {
		n *node
		w uint64
	}
	s := make([]scored, len(nodes))
	for i, nd := range nodes {
		h := fnv.New64a()
		h.Write([]byte(fn))
		h.Write([]byte{'|'})
		h.Write([]byte(nd.id))
		s[i] = scored{nd, h.Sum64()}
	}
	// Insertion sort by weight desc, id asc on ties: node counts are small
	// and the ranking must be deterministic.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].w > s[j-1].w || (s[j].w == s[j-1].w && s[j].n.id < s[j-1].n.id)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]*node, len(s))
	for i, sc := range s {
		out[i] = sc.n
	}
	return out
}
