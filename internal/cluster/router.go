package cluster

import (
	"fmt"

	"toss/internal/fleetobs"
)

// Policy selects the front-end routing policy.
type Policy int

const (
	// RouteRoundRobin cycles arrivals over live nodes in id order.
	RouteRoundRobin Policy = iota
	// RouteLeastLoaded picks the node with the fewest in-flight plus
	// queued invocations (ties break by node id).
	RouteLeastLoaded
	// RouteAffinity steers each function to its rendezvous-hash node so
	// restores land where the snapshot and warm VMs already live, spilling
	// down the hash ranking when the primary is overloaded.
	RouteAffinity
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RouteRoundRobin:
		return "rr"
	case RouteLeastLoaded:
		return "least"
	case RouteAffinity:
		return "affinity"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies returns every routing policy in canonical order.
func Policies() []Policy { return []Policy{RouteRoundRobin, RouteLeastLoaded, RouteAffinity} }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router policy %q (want rr, least, or affinity)", s)
}

// Routing reasons are stored as single-byte codes on the hot path (queued
// arrivals, the Records route column) and decoded to the fleetobs.Reason*
// strings at the observer and report boundaries.
const (
	routeRR uint8 = iota
	routeLeast
	routeAffinity
	routeSpill
	routeShed
)

// routeReasons decodes a reason code to its fleetobs string.
var routeReasons = [...]string{
	routeRR:       fleetobs.ReasonRoundRobin,
	routeLeast:    fleetobs.ReasonLeastLoaded,
	routeAffinity: fleetobs.ReasonAffinity,
	routeSpill:    fleetobs.ReasonSpill,
	routeShed:     fleetobs.ReasonShed,
}

// RouterStats counts front-end routing decisions.
type RouterStats struct {
	// Decisions is the total number of routed arrivals.
	Decisions int64
	// AffinityHits counts routes that landed on a node already holding the
	// function warm or its snapshot on local disk (any policy).
	AffinityHits int64
	// Spills counts affinity routes diverted off the hash-primary node
	// because it was overloaded.
	Spills int64
	// Sheds counts affinity routes where every candidate was overloaded
	// and the arrival went to the least-loaded node of the ranking.
	Sheds int64
	// PerNode breaks the counters down by the routed node, in id order.
	PerNode []NodeRouterStats
}

// NodeRouterStats is one node's share of the router's decisions.
type NodeRouterStats struct {
	Node         string
	Decisions    int64
	AffinityHits int64
	Spills       int64
	Sheds        int64
}

// routeResult is one routing decision: the chosen node, the reason code
// (routeReasons index), whether the choice was diverted off the affinity
// primary, and — only when a fleetobs recorder is attached — the ranked
// candidate list the router considered.
type routeResult struct {
	n        *node
	reason   uint8
	diverted bool
	cands    []fleetobs.Candidate
}

// candidates snapshots the considered nodes for the decision trace; nil
// unless a fleetobs recorder is attached (the hot path stays
// allocation-free without one).
func (c *Cluster) candidates(fid int32, idxs []int32) []fleetobs.Candidate {
	if c.cfg.FleetObs == nil {
		return nil
	}
	fn := c.fnNames[fid]
	out := make([]fleetobs.Candidate, len(idxs))
	for i, idx := range idxs {
		nd := c.nodes[idx]
		out[i] = fleetobs.Candidate{
			Node:     nd.id,
			Inflight: nd.inflight(),
			Hit:      nd.cache.Contains(fn) || nd.resident[fid] > 0,
		}
	}
	return out
}

// route picks the target node for one arrival among the live, non-draining
// nodes. It never returns a nil node while the cluster has at least one
// routable node. The candidate sets are the cached topology indexes, and
// affinity rankings are cached per function between topology changes, so a
// steady-state decision performs no allocation.
func (c *Cluster) route(fid int32, fn string) routeResult {
	cands := c.routableIdx
	fallback := false
	if len(cands) == 0 {
		// Every node is draining (autoscaler pathology); fall back to all
		// live nodes so traffic is never dropped.
		cands = c.liveIdx
		fallback = true
	}
	switch c.cfg.Router {
	case RouteLeastLoaded:
		best := c.nodes[cands[0]]
		for _, i := range cands[1:] {
			if nd := c.nodes[i]; nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return routeResult{n: best, reason: routeLeast, cands: c.candidates(fid, cands)}
	case RouteAffinity:
		var ranked []int32
		if fallback {
			ranked = c.buildRanking(fn, cands, nil)
		} else {
			ranked = c.ranking(fid, fn)
		}
		rc := c.candidates(fid, ranked)
		for i, idx := range ranked {
			nd := c.nodes[idx]
			if !c.overloaded(nd) {
				reason := routeAffinity
				if i > 0 {
					reason = routeSpill
				}
				return routeResult{n: nd, reason: reason, diverted: i > 0, cands: rc}
			}
		}
		// All overloaded: shed to the least-loaded of the ranked set so the
		// hot spot does not collapse a single node.
		best := c.nodes[ranked[0]]
		for _, idx := range ranked[1:] {
			if nd := c.nodes[idx]; nd.inflight() < best.inflight() {
				best = nd
			}
		}
		return routeResult{n: best, reason: routeShed, diverted: best != c.nodes[ranked[0]], cands: rc}
	default: // RouteRoundRobin
		n := c.nodes[cands[c.rr%len(cands)]]
		c.rr++
		return routeResult{n: n, reason: routeRR, cands: c.candidates(fid, cands)}
	}
}

// overloaded reports whether a node should be skipped by affinity spill: no
// free core means a routed arrival would queue for a full invocation's
// remaining run time, which dwarfs the cold-start cost of running it on the
// next node in the hash ranking (where the spilled function then builds
// secondary warm state).
func (c *Cluster) overloaded(n *node) bool {
	return n.inflight() >= c.cfg.Cores
}

// ranking returns fn's rendezvous ranking over the routable set, rebuilding
// the cached copy only when the topology epoch moved.
func (c *Cluster) ranking(fid int32, fn string) []int32 {
	if c.rankEpoch[fid] == c.topoEpoch {
		return c.rankCache[fid]
	}
	c.rankCache[fid] = c.buildRanking(fn, c.routableIdx, c.rankCache[fid][:0])
	c.rankEpoch[fid] = c.topoEpoch
	return c.rankCache[fid]
}

// buildRanking appends idxs to dst ordered by highest-random-weight hash
// for fn (weight descending, node id ascending on ties) — the same ranking
// rendezvousRank produces, computed over node indexes with an inline hash
// so rebuilds don't allocate beyond dst itself.
func (c *Cluster) buildRanking(fn string, idxs []int32, dst []int32) []int32 {
	w := c.rankW[:0]
	for _, i := range idxs {
		dst = append(dst, i)
		w = append(w, rendezvousWeight(fn, c.nodes[i].id))
	}
	c.rankW = w
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && (w[j] > w[j-1] || (w[j] == w[j-1] && c.nodes[dst[j]].id < c.nodes[dst[j-1]].id)); j-- {
			w[j], w[j-1] = w[j-1], w[j]
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// rendezvousWeight is the highest-random-weight hash for (fn, node): FNV-1a
// over fn|id, inlined so the routing path never allocates a hasher.
func rendezvousWeight(fn, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fn); i++ {
		h ^= uint64(fn[i])
		h *= prime64
	}
	h ^= uint64('|')
	h *= prime64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// rendezvousRank orders nodes by highest-random-weight hash for fn. Every
// front-end computes the same ranking independently of fleet-change order,
// and a node join/leave only moves the functions that hashed to it — the
// property that keeps snapshot affinity stable while the autoscaler works.
func rendezvousRank(fn string, nodes []*node) []*node {
	type scored struct {
		n *node
		w uint64
	}
	s := make([]scored, len(nodes))
	for i, nd := range nodes {
		s[i] = scored{nd, rendezvousWeight(fn, nd.id)}
	}
	// Insertion sort by weight desc, id asc on ties: node counts are small
	// and the ranking must be deterministic.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].w > s[j-1].w || (s[j].w == s[j-1].w && s[j].n.id < s[j-1].n.id)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]*node, len(s))
	for i, sc := range s {
		out[i] = sc.n
	}
	return out
}
