package cluster

import (
	"fmt"
	"strings"
	"testing"

	"toss/internal/fleet"
	"toss/internal/par"
	"toss/internal/simtime"
	"toss/internal/workload"
)

// testProfiles builds synthetic per-function profiles with footprints the
// tests control exactly: 16 MB fast + 192 MB slow per warm VM, ~80 ms cold
// setup, level-scaled exec. Real measured profiles get their own test
// (TestProfileMeasures); the event-loop tests want precise capacity
// pressure, not microVM realism.
func testProfiles(fns ...string) map[string]FnProfile {
	out := make(map[string]FnProfile, len(fns))
	for i, fn := range fns {
		p := FnProfile{
			Name:      fn,
			FastPages: 4096,  // 16 MB
			SlowPages: 49152, // 192 MB
		}
		for lv := 0; lv < 4; lv++ {
			p.ColdSetup[lv] = 80 * simtime.Millisecond
			p.ColdExec[lv] = simtime.Duration(20+10*lv+2*i) * simtime.Millisecond
			p.WarmExec[lv] = simtime.Duration(8+4*lv+i) * simtime.Millisecond
		}
		p.SnapshotBytes = (p.FastPages + p.SlowPages) * 4096
		out[fn] = p
	}
	return out
}

var testFns = []string{"float_operation", "pyaes", "compress", "matmul"}

// testHost holds three of the four test VMs warm per node (48 MB fast /
// 600 MB slow against 16/192 MB footprints), so routing policy decides
// whether warm state thrashes.
func testHost() fleet.HostSpec {
	return fleet.HostSpec{FastBytes: 48 << 20, SlowBytes: 600 << 20}
}

func testConfig(nodes int, router Policy) Config {
	cfg := DefaultConfig(nodes)
	cfg.Hosts = testHost().Hosts(nodes)
	cfg.Cores = 4
	cfg.DiskBytes = 500 << 20 // two ~208 MB snapshots per node
	cfg.PullBytesPerSec = 1 << 30
	cfg.Router = router
	cfg.SLO = 150 * simtime.Millisecond
	cfg.BurnWindow = 5 * simtime.Second
	return cfg
}

func testArrivals(t *testing.T, proc workload.Process, meanIAT simtime.Duration) []workload.ArrivalSpec {
	t.Helper()
	specs, err := workload.Arrivals(workload.ArrivalsConfig{
		Process:   proc,
		Horizon:   60 * simtime.Second,
		MeanIAT:   meanIAT,
		Functions: testFns,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// renderReport serializes everything decision-dependent about a run so the
// determinism tests can compare byte-for-byte.
func renderReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "records=%d horizon=%d busy=%d pulls=%d pulltime=%d\n",
		rep.Records.Len(), int64(rep.Horizon), int64(rep.BusyCoreTime), rep.Pulls, int64(rep.PullTime))
	fmt.Fprintf(&b, "router=%+v peak=%d final=%d\n", rep.Router, rep.PeakNodes, rep.FinalNodes)
	for i := 0; i < rep.Records.Len(); i++ {
		r := rep.Records.At(i)
		fmt.Fprintf(&b, "%s %s %s %d %d %d %d %d %d %d %v\n",
			r.Function, r.Node, r.Route, int64(r.Arrival), int64(r.RouterQueue), int64(r.Decide),
			int64(r.QueueDelay), int64(r.Pull), int64(r.Setup), int64(r.Exec), r.Cold)
	}
	for _, ev := range rep.ScaleEvents {
		fmt.Fprintf(&b, "scale %d %s %s %.6f %.6f %d\n", int64(ev.At), ev.Action, ev.Node, ev.Util, ev.Burn, ev.Fleet)
	}
	for _, ns := range rep.Nodes {
		fmt.Fprintf(&b, "node %s inv=%d cold=%d busy=%d cache=%+v final=%v\n",
			ns.ID, ns.Invocations, ns.ColdStarts, int64(ns.Busy), ns.Cache, ns.Final)
	}
	return b.String()
}

func runOnce(t *testing.T, cfg Config, arrivals []workload.ArrivalSpec) *Report {
	t.Helper()
	c, err := New(cfg, testProfiles(testFns...))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestClusterDeterminism runs the same fleet serially, repeatedly, and on a
// 4-worker pool, and requires byte-identical reports — the property ext9
// and the CI serial-vs-parallel check stand on.
func TestClusterDeterminism(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 40*simtime.Millisecond)
	cfg := testConfig(3, RouteAffinity)
	cfg.Autoscale = Autoscaler{Enabled: true, Tick: 2 * simtime.Second, Min: 2, Max: 6}

	base := renderReport(runOnce(t, cfg, arrivals))
	for run := 0; run < 2; run++ {
		if got := renderReport(runOnce(t, cfg, arrivals)); got != base {
			t.Fatalf("run %d differs from first run", run)
		}
	}
	rendered, err := par.Map(par.New(4), make([]struct{}, 8), func(i int, _ struct{}) (string, error) {
		c, err := New(cfg, testProfiles(testFns...))
		if err != nil {
			return "", err
		}
		rep, err := c.Run(arrivals)
		if err != nil {
			return "", err
		}
		return renderReport(rep), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rendered {
		if r != base {
			t.Fatalf("parallel worker %d produced a different report", i)
		}
	}
}

// TestAffinityBeatsRoundRobin pins the tentpole's headline claim: on
// cold-start-heavy flash-crowd traffic, snapshot-affinity routing holds
// warm state and snapshot residency together and beats round-robin on both
// cold-start fraction and tail latency.
func TestAffinityBeatsRoundRobin(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 60*simtime.Millisecond)
	aff := runOnce(t, testConfig(4, RouteAffinity), arrivals)
	rr := runOnce(t, testConfig(4, RouteRoundRobin), arrivals)

	if aff.ColdFraction() >= rr.ColdFraction() {
		t.Errorf("affinity cold fraction %.3f not below round-robin %.3f", aff.ColdFraction(), rr.ColdFraction())
	}
	if ap, rp := aff.LatencyPercentile(99), rr.LatencyPercentile(99); ap >= rp {
		t.Errorf("affinity p99 %v not below round-robin %v", ap, rp)
	}
	if aff.Pulls >= rr.Pulls {
		t.Errorf("affinity pulled %d snapshots, round-robin %d — affinity should pull fewer", aff.Pulls, rr.Pulls)
	}
	if aff.Router.AffinityHits == 0 {
		t.Error("affinity routing recorded no affinity hits")
	}
}

// TestLeastLoadedSpreadsQueueing sanity-checks the third policy: under
// uniform traffic it should not be catastrophically worse than round-robin
// on queueing, and every node should see work.
func TestLeastLoadedSpreadsQueueing(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcPoisson, 30*simtime.Millisecond)
	rep := runOnce(t, testConfig(3, RouteLeastLoaded), arrivals)
	for _, ns := range rep.Nodes {
		if ns.Invocations == 0 {
			t.Errorf("node %s received no invocations under least-loaded", ns.ID)
		}
	}
	if rep.Router.Decisions != int64(len(arrivals)) {
		t.Errorf("router decisions %d != arrivals %d", rep.Router.Decisions, len(arrivals))
	}
}

// TestAutoscaler drives a flash-crowd at a small fleet with autoscaling on
// and asserts the fleet grows under load, shrinks back when the burst
// passes, and that the decision log replays identically.
func TestAutoscaler(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 25*simtime.Millisecond)
	cfg := testConfig(2, RouteAffinity)
	cfg.Autoscale = Autoscaler{Enabled: true, Tick: 2 * simtime.Second, Min: 2, Max: 8}

	rep := runOnce(t, cfg, arrivals)
	if len(rep.ScaleEvents) == 0 {
		t.Fatal("autoscaler made no decisions under flash-crowd load")
	}
	ups, downs := 0, 0
	for _, ev := range rep.ScaleEvents {
		switch ev.Action {
		case "up":
			ups++
		case "down":
			downs++
		default:
			t.Fatalf("unknown scale action %q", ev.Action)
		}
	}
	if ups == 0 {
		t.Error("fleet never scaled up under flash-crowd load")
	}
	if downs == 0 {
		t.Error("fleet never drained back down after the bursts")
	}
	if rep.PeakNodes <= 2 {
		t.Errorf("peak fleet size %d never exceeded the initial 2 nodes", rep.PeakNodes)
	}
	if rep.PeakNodes > 8 {
		t.Errorf("peak fleet size %d exceeded Max=8", rep.PeakNodes)
	}
	if rep.FinalNodes < 2 {
		t.Errorf("final fleet size %d below Min=2", rep.FinalNodes)
	}

	again := runOnce(t, cfg, arrivals)
	if fmt.Sprintf("%+v", rep.ScaleEvents) != fmt.Sprintf("%+v", again.ScaleEvents) {
		t.Error("autoscaler decisions not reproducible across identical runs")
	}
}

// TestRendezvousStability checks the affinity hash: rankings are
// deterministic, and removing one node only remaps the functions that
// ranked it first.
func TestRendezvousStability(t *testing.T) {
	nodes := make([]*node, 5)
	for i := range nodes {
		nodes[i] = &node{id: fmt.Sprintf("n%02d", i+1)}
	}
	primary := func(fn string, ns []*node) string { return rendezvousRank(fn, ns)[0].id }

	fns := []string{"float_operation", "pyaes", "compress", "matmul", "pagerank", "linpack", "lr_serving"}
	before := map[string]string{}
	for _, fn := range fns {
		before[fn] = primary(fn, nodes)
		if got := primary(fn, nodes); got != before[fn] {
			t.Fatalf("rendezvous ranking for %s not deterministic", fn)
		}
	}
	removed := nodes[2].id
	smaller := append(append([]*node{}, nodes[:2]...), nodes[3:]...)
	for _, fn := range fns {
		after := primary(fn, smaller)
		if before[fn] != removed && after != before[fn] {
			t.Errorf("%s moved from %s to %s though its primary %s was not removed", fn, before[fn], after, before[fn])
		}
	}
}

// TestClusterValidate exercises the configuration rejection paths.
func TestClusterValidate(t *testing.T) {
	good := testConfig(2, RouteAffinity)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no hosts", func(c *Config) { c.Hosts = nil }},
		{"bad host", func(c *Config) { c.Hosts = []fleet.HostSpec{{FastBytes: 0}} }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero disk", func(c *Config) { c.DiskBytes = 0 }},
		{"zero pull bandwidth", func(c *Config) { c.PullBytesPerSec = 0 }},
		{"negative resume", func(c *Config) { c.ResumeCost = -1 }},
		{"autoscaler bounds", func(c *Config) {
			c.Autoscale = Autoscaler{Enabled: true, Tick: simtime.Second, Min: 3, Max: 2}
		}},
		{"initial outside bounds", func(c *Config) {
			c.Autoscale = Autoscaler{Enabled: true, Tick: simtime.Second, Min: 4, Max: 8}
		}},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if _, err := New(cfg, testProfiles(testFns...)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("empty profiles: expected error")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted unknown name")
	}
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	c, err := New(good, testProfiles(testFns...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]workload.ArrivalSpec{{Function: "unprofiled"}}); err == nil {
		t.Error("unprofiled arrival: expected error")
	}
}
