package cluster

import (
	"testing"

	"toss/internal/simtime"
)

func TestCompletionsSortedByCompletionTime(t *testing.T) {
	r := &Records{fnNames: []string{"a", "b"}, nodeNames: []string{"n0"}}
	ms := func(n int) simtime.Duration { return simtime.Duration(n) * simtime.Millisecond }
	// Three invocations whose completion order differs from arrival order:
	// #0 arrives first but runs long; #1 arrives later and finishes first;
	// #2 ties #0's completion time and must keep record order (stable sort).
	r.push(0, 0, 1, 0, true, ms(0), 0, 0, 0, 0, ms(10), ms(90)) // completes at 100ms
	r.push(1, 0, 2, 0, false, ms(50), 0, 0, 0, 0, 0, ms(20))    // completes at 70ms
	r.push(0, 0, 1, 0, false, ms(60), 0, 0, 0, 0, 0, ms(40))    // completes at 100ms
	got := r.Completions()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Function != "b" || got[0].At != ms(70) || got[0].Latency != ms(20) || got[0].Cold || got[0].Level != 2 {
		t.Fatalf("first completion = %+v", got[0])
	}
	if got[1].At != ms(100) || !got[1].Cold || got[1].Latency != ms(100) {
		t.Fatalf("tie order lost: %+v", got[1])
	}
	if got[2].At != ms(100) || got[2].Cold {
		t.Fatalf("tie order lost: %+v", got[2])
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("completions not nondecreasing at %d", i)
		}
	}
}
