package cluster

import (
	"bytes"
	"testing"

	"toss/internal/fleetobs"
	"toss/internal/obs"
	"toss/internal/simtime"
	"toss/internal/telemetry"
	"toss/internal/workload"
	"toss/internal/xray"
)

// TestClusterBudgetsBalance pins the cluster x-ray invariant at the unit
// level: every routed invocation's budget decomposes into the causally
// ordered router.queue / router.decide / node.queue / snapshot.pull /
// exec.* segments and Sum() equals the independently computed record
// latency — including with a non-instant front end charging decision cost.
func TestClusterBudgetsBalance(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 40*simtime.Millisecond)
	for _, decide := range []simtime.Duration{0, 2 * simtime.Millisecond} {
		col := &xray.Collector{}
		cfg := testConfig(3, RouteAffinity)
		cfg.XRay = col
		cfg.XRayTag = "3n/affinity/flash/toss"
		cfg.DecideCost = decide
		rep := runOnce(t, cfg, arrivals)

		buds := col.Drain()
		if len(buds) != rep.Records.Len() {
			t.Fatalf("decide=%v: %d budgets for %d records", decide, len(buds), rep.Records.Len())
		}
		var sawRouterQueue, sawDecide bool
		for _, b := range buds {
			if b.Sum() != b.Recorded() {
				t.Fatalf("decide=%v: budget %q unbalanced: Sum %v != Recorded %v", decide, b.Label, b.Sum(), b.Recorded())
			}
			if b.Get(xray.SegRouterQueue) > 0 {
				sawRouterQueue = true
			}
			if b.Get(xray.SegRouterDecide) > 0 {
				sawDecide = true
			}
			if b.Get(xray.SegExecRun) == 0 {
				t.Fatalf("budget %q missing exec.run", b.Label)
			}
		}
		if decide == 0 && (sawRouterQueue || sawDecide) {
			t.Error("instant front end charged router segments")
		}
		if decide > 0 && !sawDecide {
			t.Error("DecideCost charged no router.decide segment")
		}
		if decide > 0 && !sawRouterQueue {
			// Flash crowds deliver near-simultaneous arrivals, so a 2ms
			// serial decision loop must back some of them up.
			t.Error("backed-up router charged no router.queue segment")
		}
		// The record's own arithmetic agrees with the budget decomposition.
		for i := 0; i < rep.Records.Len(); i++ {
			rec := rep.Records.At(i)
			want := rec.RouterQueue + rec.Decide + rec.QueueDelay + rec.Pull + rec.Setup + rec.Exec
			if rec.Latency() != want {
				t.Fatalf("record %d latency %v != field sum %v", i, rec.Latency(), want)
			}
			if got := rep.Records.Latency(i); got != want {
				t.Fatalf("record %d columnar latency %v != field sum %v", i, got, want)
			}
		}
		if decide > 0 {
			tagged := buds[0].Label
			if want := "/cluster/3n/affinity/flash/toss"; !bytes.Contains([]byte(tagged), []byte(want)) {
				t.Fatalf("XRayTag missing from label %q", tagged)
			}
		}
	}
}

// TestRouterStatsPerNode checks the per-node breakdown: counters sum to the
// fleet-wide totals, rows are in id order, and saturating traffic produces
// sheds that are counted separately from spills.
func TestRouterStatsPerNode(t *testing.T) {
	// 2 nodes x 4 cores at a 10ms mean IAT saturates the fleet, forcing
	// spills and sheds alongside primary hits.
	arrivals := testArrivals(t, workload.ProcFlash, 10*simtime.Millisecond)
	rep := runOnce(t, testConfig(2, RouteAffinity), arrivals)

	var dec, hits, spills, sheds int64
	prev := ""
	for _, pn := range rep.Router.PerNode {
		if pn.Node <= prev {
			t.Fatalf("PerNode not sorted: %q after %q", pn.Node, prev)
		}
		prev = pn.Node
		dec += pn.Decisions
		hits += pn.AffinityHits
		spills += pn.Spills
		sheds += pn.Sheds
	}
	if dec != rep.Router.Decisions || hits != rep.Router.AffinityHits ||
		spills != rep.Router.Spills || sheds != rep.Router.Sheds {
		t.Fatalf("per-node sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			dec, hits, spills, sheds,
			rep.Router.Decisions, rep.Router.AffinityHits, rep.Router.Spills, rep.Router.Sheds)
	}
	if rep.Router.Sheds == 0 {
		t.Error("saturating traffic produced no sheds")
	}
	if rep.Router.Decisions != int64(len(arrivals)) {
		t.Fatalf("decisions %d != arrivals %d", rep.Router.Decisions, len(arrivals))
	}
}

// TestFleetObsTrace checks the decision trace against the run it observed:
// one route event per arrival with candidate rankings, scale actions
// mirroring the report's ScaleEvents, grid samples on the cadence, and a
// byte-identical decision log across reruns.
func TestFleetObsTrace(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 25*simtime.Millisecond)
	run := func() (*Report, *fleetobs.Recorder) {
		cfg := testConfig(2, RouteAffinity)
		cfg.Autoscale = Autoscaler{Enabled: true, Tick: 2 * simtime.Second, Min: 2, Max: 8}
		fr := fleetobs.New(fleetobs.Config{Interval: simtime.Second})
		cfg.FleetObs = fr
		return runOnce(t, cfg, arrivals), fr
	}
	rep, fr := run()

	var routes, scales int
	for _, e := range fr.Events() {
		switch {
		case e.Route != nil:
			routes++
			if len(e.Route.Candidates) == 0 {
				t.Fatal("route event missing candidate ranking")
			}
			if e.Route.Node == "" || e.Route.Reason == "" {
				t.Fatalf("incomplete route event: %+v", e.Route)
			}
		case e.Scale != nil:
			scales++
		}
	}
	if routes != len(arrivals) {
		t.Fatalf("%d route events for %d arrivals", routes, len(arrivals))
	}
	if scales != len(rep.ScaleEvents) {
		t.Fatalf("%d scale events in trace, %d in report", scales, len(rep.ScaleEvents))
	}
	if len(fr.Samples()) == 0 {
		t.Fatal("no grid samples recorded")
	}
	v := fr.View()
	var inv int64
	for _, n := range v.Nodes {
		inv += n.Invocations
	}
	if inv != int64(rep.Records.Len()) {
		t.Fatalf("view counted %d invocations, report has %d", inv, rep.Records.Len())
	}

	var a, b bytes.Buffer
	if err := fr.WriteDecisionLog(&a); err != nil {
		t.Fatal(err)
	}
	_, fr2 := run()
	if err := fr2.WriteDecisionLog(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("decision log not byte-identical across identical runs")
	}
	var ct bytes.Buffer
	if err := fr.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	if ct.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestScaleEventsIdenticalUnderObservers mirrors PR 4's zero-fault-plan
// identity test at fleet scale: attaching the full observability stack —
// flight recorder, metrics, xray collector, fleetobs recorder — must not
// perturb a single routing or scaling decision. The whole report renders
// byte-identical with and without observers.
func TestScaleEventsIdenticalUnderObservers(t *testing.T) {
	arrivals := testArrivals(t, workload.ProcFlash, 25*simtime.Millisecond)
	cfg := testConfig(2, RouteAffinity)
	cfg.Autoscale = Autoscaler{Enabled: true, Tick: 2 * simtime.Second, Min: 2, Max: 8}

	bare := runOnce(t, cfg, arrivals)
	if len(bare.ScaleEvents) == 0 {
		t.Fatal("test traffic produced no scale events; identity check would be vacuous")
	}

	observed := cfg
	observed.Recorder = obs.New(obs.Config{Interval: 100 * simtime.Millisecond})
	observed.Metrics = telemetry.NewMetrics()
	observed.XRay = &xray.Collector{}
	observed.FleetObs = fleetobs.New(fleetobs.Config{})
	rep := runOnce(t, observed, arrivals)

	if got, want := renderReport(rep), renderReport(bare); got != want {
		t.Fatal("report differs with observers attached")
	}
	if len(observed.FleetObs.Events()) == 0 {
		t.Fatal("fleetobs observed nothing")
	}
}
