package cluster

import (
	"testing"

	"toss/internal/simtime"
	"toss/internal/workload"
)

// millionArrivals is the day-shaped arrival stream BenchmarkClusterRun
// simulates: a diurnal baseline with flash-crowd episodes riding on it,
// ~1.1M arrivals over a one-hour horizon, never materialized.
func millionArrivals() workload.ArrivalsConfig {
	return workload.ArrivalsConfig{
		Process:   workload.ProcDiurnalFlash,
		Horizon:   3600 * simtime.Second,
		MeanIAT:   9 * simtime.Millisecond,
		Functions: testFns,
		Seed:      1,
	}
}

// benchClusterConfig sizes the fleet so the benchmark load is servable at
// mean rate and queues during flash peaks — the realistic regime, and the
// one that exercises the waiting ring.
func benchClusterConfig() Config {
	cfg := testConfig(4, RouteAffinity)
	cfg.Cores = 16
	return cfg
}

// BenchmarkClusterRun is the event core's headline number: one full
// million-invocation day-shape simulation per op, streaming arrivals, no
// observers attached. The acceptance budget is >=1M invocations simulated
// in under 5s of wall clock on one core with <=2 amortized heap
// allocations per invocation; allocs/op divided by the reported
// "invocations" metric gives the per-invocation figure the CI guard
// watches.
func BenchmarkClusterRun(b *testing.B) {
	cfg := benchClusterConfig()
	profiles := testProfiles(testFns...)
	b.ReportAllocs()
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := workload.NewStream(millionArrivals())
		if err != nil {
			b.Fatal(err)
		}
		cl, err := New(cfg, profiles)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := cl.RunStream(src)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(rep.Records.Len())
	}
	b.StopTimer()
	invPerOp := float64(total) / float64(b.N)
	b.ReportMetric(invPerOp, "invocations")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "inv/s")
	}
	if invPerOp < 1_000_000 {
		b.Fatalf("benchmark simulated %.0f invocations per op, want >= 1M", invPerOp)
	}
}

// TestClusterRunAllocBudget enforces the hot-path allocation budget as a
// tier-1 test (the benchmark-based CI guard is warn-only): a ~55k-
// invocation run, including cluster construction and stream setup, must
// stay under 2 amortized heap allocations per invocation.
func TestClusterRunAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	if testing.Short() {
		t.Skip("skipping 55k-invocation allocation count in -short mode")
	}
	acfg := millionArrivals()
	acfg.Horizon = 180 * simtime.Second
	profiles := testProfiles(testFns...)
	var invocations int
	avg := testing.AllocsPerRun(1, func() {
		src, err := workload.NewStream(acfg)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(benchClusterConfig(), profiles)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.RunStream(src)
		if err != nil {
			t.Fatal(err)
		}
		invocations = rep.Records.Len()
	})
	if invocations == 0 {
		t.Fatal("no invocations simulated")
	}
	perInv := avg / float64(invocations)
	t.Logf("%d invocations, %.0f allocations, %.4f allocs/invocation", invocations, avg, perInv)
	if perInv > 2 {
		t.Fatalf("amortized allocations per invocation %.4f > 2 (total %.0f over %d invocations)",
			perInv, avg, invocations)
	}
}

// TestRunStreamMatchesRun pins that driving the cluster from a streaming
// source is byte-identical to replaying the materialized schedule — the
// cluster-level half of the streaming-equals-materialized contract (the
// workload-level half lives in workload's stream tests).
func TestRunStreamMatchesRun(t *testing.T) {
	acfg := workload.ArrivalsConfig{
		Process:   workload.ProcDiurnalFlash,
		Horizon:   60 * simtime.Second,
		MeanIAT:   40 * simtime.Millisecond,
		Functions: testFns,
		Seed:      42,
	}
	arrivals, err := workload.Arrivals(acfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles := testProfiles(testFns...)

	cl1, err := New(testConfig(3, RouteAffinity), profiles)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := cl1.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}

	src, err := workload.NewStream(acfg)
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := New(testConfig(3, RouteAffinity), profiles)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cl2.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := renderReport(rep1), renderReport(rep2); a != b {
		t.Fatalf("streaming run diverged from materialized run:\nmaterialized:\n%s\nstreaming:\n%s", a, b)
	}
}
