package cluster

import (
	"fmt"

	"toss/internal/guest"
	"toss/internal/sched"
	"toss/internal/simtime"
	"toss/internal/trace"
	"toss/internal/workload"
)

// FnProfile is one function's measured steady-state cost profile under a
// mechanism: the numbers the cluster event loop charges per invocation
// instead of embedding a whole single-host simulator in every node. The
// profile is measured once per (mechanism, function) through sched.Invoker
// — the same microVM machinery the single-host simulator runs — so cluster
// results stay anchored to the calibrated model rather than hand-picked
// constants.
type FnProfile struct {
	Name string
	// ColdSetup / ColdExec are the steady-state cold-start restore and
	// execution costs per input level.
	ColdSetup [4]simtime.Duration
	ColdExec  [4]simtime.Duration
	// WarmExec is the execution cost in a resumed kept-alive VM per level.
	WarmExec [4]simtime.Duration
	// FastPages / SlowPages is the warm VM's keep-alive footprint per tier.
	FastPages int64
	SlowPages int64
	// SnapshotBytes is the on-disk snapshot size a node must hold locally
	// (pull it over the network otherwise) to cold-restore the function.
	SnapshotBytes int64
	// Warmups is how many invocations the mechanism needed to reach its
	// steady state (TOSS convergence, REAP working-set capture).
	Warmups int
}

// maxProfileWarmups bounds the steady-state warm-up loop; TOSS converges in
// well under 100 invocations with the reduced convergence windows the
// experiments use.
const maxProfileWarmups = 400

// Profile measures steady-state profiles for every function under the given
// host config. Measurement seeds derive only from the function index, so
// the profiles — and everything the cluster computes from them — are
// reproducible from the config alone.
func Profile(cfg sched.Config, fns []string) (map[string]FnProfile, error) {
	out := make(map[string]FnProfile, len(fns))
	for i, fn := range fns {
		p, err := profileOne(cfg, fn, int64(i))
		if err != nil {
			return nil, fmt.Errorf("cluster: profiling %s/%s: %w", cfg.Mechanism, fn, err)
		}
		out[fn] = p
	}
	return out, nil
}

// profileOne warms one mechanism to steady state and measures its costs.
func profileOne(cfg sched.Config, fn string, fnIdx int64) (FnProfile, error) {
	iv, err := sched.NewInvoker(cfg, fn)
	if err != nil {
		return FnProfile{}, err
	}
	p := FnProfile{Name: fn}
	seed := 7001 + fnIdx*131

	// Warm up: invoke cold across the levels until the mechanism reports
	// steady state (TOSS tiered, REAP/FaaSnap working set recorded, DRAM
	// snapshot captured).
	for n := 0; n < maxProfileWarmups && !iv.Ready(); n++ {
		lv := workload.Level(n % len(workload.Levels))
		a := trace.Arrival{Function: fn, Level: lv, Seed: seed + int64(n)}
		if _, _, err := iv.InvokeCold(a, 1); err != nil {
			return FnProfile{}, err
		}
		p.Warmups++
	}
	if !iv.Ready() {
		return FnProfile{}, fmt.Errorf("not at steady state after %d warm-ups", p.Warmups)
	}

	// Measure per-level costs at concurrency 1 — queueing and contention
	// are the cluster loop's job, not the profile's.
	for li := range workload.Levels {
		lv := workload.Level(li)
		a := trace.Arrival{Function: fn, Level: lv, Seed: seed + 10_000 + int64(li)}
		setup, exec, err := iv.InvokeCold(a, 1)
		if err != nil {
			return FnProfile{}, err
		}
		p.ColdSetup[li], p.ColdExec[li] = setup, exec
		warm, err := iv.InvokeWarm(a, 1)
		if err != nil {
			return FnProfile{}, err
		}
		p.WarmExec[li] = warm
	}
	p.FastPages, p.SlowPages = iv.Footprint()
	p.SnapshotBytes = (p.FastPages + p.SlowPages) * guest.PageSize
	return p, nil
}
