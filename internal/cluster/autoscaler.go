package cluster

import (
	"fmt"

	"toss/internal/fleetobs"
	"toss/internal/simtime"
	"toss/internal/telemetry"
)

// Autoscaler configures the virtual-time fleet autoscaler. Every Tick of
// virtual time it inspects two fleet-wide signals — mean core utilization
// since the last tick and the SLO burn fraction among completions since the
// last tick (fed by the same xray.BurnTracker the report exposes) — and
// grows the fleet when either runs hot, or drains the least-loaded node
// when both run cold. Decisions depend only on virtual-time state, so they
// replay identically from the seed.
type Autoscaler struct {
	// Enabled turns the autoscaler on.
	Enabled bool
	// Tick is the evaluation period (default 5s of virtual time).
	Tick simtime.Duration
	// Min / Max bound the fleet size (defaults: initial size, 4x initial).
	Min, Max int
	// UtilHigh / UtilLow are the utilization thresholds for scaling up /
	// initiating a drain (defaults 0.80 / 0.25).
	UtilHigh, UtilLow float64
	// BurnHigh is the per-tick SLO violation fraction that forces a scale
	// up regardless of utilization (default 0.10). Requires Config.SLO.
	BurnHigh float64
}

// withDefaults fills zero fields relative to the initial fleet size.
func (a Autoscaler) withDefaults(initial int) Autoscaler {
	if !a.Enabled {
		return a
	}
	if a.Tick == 0 {
		a.Tick = 5 * simtime.Second
	}
	if a.Min == 0 {
		a.Min = initial
	}
	if a.Max == 0 {
		a.Max = 4 * initial
	}
	if a.UtilHigh == 0 {
		a.UtilHigh = 0.80
	}
	if a.UtilLow == 0 {
		a.UtilLow = 0.25
	}
	if a.BurnHigh == 0 {
		a.BurnHigh = 0.10
	}
	return a
}

// validate checks the autoscaler configuration.
func (a Autoscaler) validate(initial int) error {
	if !a.Enabled {
		return nil
	}
	if a.Tick <= 0 {
		return fmt.Errorf("cluster: non-positive autoscaler tick")
	}
	if a.Min < 1 || a.Max < a.Min {
		return fmt.Errorf("cluster: autoscaler bounds [%d, %d] invalid", a.Min, a.Max)
	}
	if initial < a.Min || initial > a.Max {
		return fmt.Errorf("cluster: initial fleet size %d outside autoscaler bounds [%d, %d]", initial, a.Min, a.Max)
	}
	if a.UtilHigh <= a.UtilLow {
		return fmt.Errorf("cluster: UtilHigh %.2f must exceed UtilLow %.2f", a.UtilHigh, a.UtilLow)
	}
	return nil
}

// ScaleEvent is one autoscaler decision.
type ScaleEvent struct {
	At simtime.Duration
	// Action is "up" (node added) or "down" (node begins draining).
	Action string
	// Node names the added or draining node.
	Node string
	// Util and Burn are the signals at decision time.
	Util float64
	Burn float64
	// Fleet is the routable fleet size after the decision.
	Fleet int
}

// onScaleTick evaluates the fleet signals and resizes if warranted.
func (c *Cluster) onScaleTick() {
	// Retire drained nodes first: a draining node with nothing in flight
	// leaves the fleet (its cached state is discarded).
	retired := false
	for _, n := range c.nodes {
		if n.alive && n.draining && n.inflight() == 0 {
			n.alive = false
			retired = true
		}
	}
	if retired {
		c.rebuildTopo()
	}

	as := c.cfg.Autoscale
	routable := len(c.routableIdx)
	if routable == 0 {
		return
	}

	// Mean utilization since the last tick across routable cores.
	busyDelta := c.report.BusyCoreTime - c.lastBusy
	c.lastBusy = c.report.BusyCoreTime
	util := float64(busyDelta) / (float64(as.Tick) * float64(c.cfg.Cores) * float64(routable))

	// SLO burn fraction among completions since the last tick, as deltas
	// of the fleet burn tracker's totals.
	var burn float64
	if c.burn != nil {
		total, bad := c.burn.Totals()
		if d := total - c.lastTotal; d > 0 {
			burn = float64(bad-c.lastBad) / float64(d)
		}
		c.lastTotal, c.lastBad = total, bad
	}

	switch {
	case (util > as.UtilHigh || burn > as.BurnHigh) && routable < as.Max:
		h := c.cfg.Hosts[(c.nextID)%len(c.cfg.Hosts)]
		n := c.addNode(h) // rebuilds the topology caches
		c.recordScale("up", n, util, burn)
	case util < as.UtilLow && burn <= as.BurnHigh/2 && routable > as.Min:
		// Drain the routable node with the least in flight; ties prefer
		// the newest node so the original fleet persists.
		victim := c.nodes[c.routableIdx[0]]
		for _, i := range c.routableIdx[1:] {
			n := c.nodes[i]
			if n.inflight() < victim.inflight() || (n.inflight() == victim.inflight() && n.id > victim.id) {
				victim = n
			}
		}
		victim.draining = true
		c.rebuildTopo()
		c.recordScale("down", victim, util, burn)
	}
}

// recordScale logs one decision on every surface.
func (c *Cluster) recordScale(action string, n *node, util, burn float64) {
	before := len(c.routableIdx)
	switch action {
	case "up":
		c.pendingUp++
	case "down":
		c.pendingDown++
	}
	ev := ScaleEvent{At: c.now, Action: action, Node: n.id, Util: util, Burn: burn, Fleet: before}
	c.report.ScaleEvents = append(c.report.ScaleEvents, ev)
	c.cfg.FleetObs.ScaleAction(fleetobs.Scale{
		At: c.now, Action: action, Node: n.id, Util: util, Burn: burn, Fleet: before,
	})
	if m := c.cfg.Metrics; m != nil {
		if action == "up" {
			m.Counter(telemetry.MetricClusterScaleUps).Add(1)
		} else {
			m.Counter(telemetry.MetricClusterScaleDown).Add(1)
		}
		m.Gauge(telemetry.MetricClusterNodes).Set(int64(before))
	}
	if r := c.cfg.Recorder; r != nil {
		delta := -1
		if action == "up" {
			delta = 1
		}
		r.ObservePhase("cluster/fleet", fmt.Sprintf("n=%d", before-delta), fmt.Sprintf("n=%d", before), 0)
	}
}
