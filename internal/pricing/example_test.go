package pricing_test

import (
	"fmt"

	"toss/internal/pricing"
	"toss/internal/simtime"
)

// Example prices one matmul-like invocation (256 MB bundle, 250 ms) under
// the DRAM-only Lambda-class plan and under TOSS's tiered plan with 92% of
// the bundle offloaded at a 6.5% slowdown (§III-D).
func Example() {
	plan, err := pricing.NewTiered(pricing.LambdaLike(), 2.5)
	if err != nil {
		panic(err)
	}
	mem := int64(256 << 20)
	exec := 250 * simtime.Millisecond
	dram := plan.Plan.Invocation(mem, exec)
	slow := int64(float64(mem) * 0.92)
	tiered := plan.Invocation(mem-slow, slow, exec.Scale(1.065))

	fmt.Printf("dram-only: $%.9f\n", dram)
	fmt.Printf("toss tier: $%.9f\n", tiered)
	saving, err := plan.Saving(mem, slow, exec, 1.065)
	if err != nil {
		panic(err)
	}
	fmt.Printf("saving: %.0f%%\n", saving*100)
	// Output:
	// dram-only: $0.000001042
	// toss tier: $0.000000498
	// saving: 52%
}
