package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"toss/internal/simtime"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLambdaLikeValid(t *testing.T) {
	if err := LambdaLike().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	mutations := []func(*Plan){
		func(p *Plan) { p.PerGBSecond = 0 },
		func(p *Plan) { p.PerMillionRequests = -1 },
		func(p *Plan) { p.IncrementBytes = 0 },
		func(p *Plan) { p.Quantum = 0 },
	}
	for i, m := range mutations {
		p := LambdaLike()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBilledBytesRounding(t *testing.T) {
	p := LambdaLike()
	cases := []struct{ in, want int64 }{
		{0, 128 << 20},
		{1, 128 << 20},
		{128 << 20, 128 << 20},
		{128<<20 + 1, 256 << 20},
		{1000 << 20, 1024 << 20},
	}
	for _, c := range cases {
		if got := p.BilledBytes(c.in); got != c.want {
			t.Errorf("BilledBytes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBilledDurationRounding(t *testing.T) {
	p := LambdaLike()
	if got := p.BilledDuration(0); got != simtime.Millisecond {
		t.Errorf("zero duration billed as %v", got)
	}
	if got := p.BilledDuration(1500 * simtime.Microsecond); got != 2*simtime.Millisecond {
		t.Errorf("1.5ms billed as %v", got)
	}
	if got := p.BilledDuration(simtime.Millisecond); got != simtime.Millisecond {
		t.Errorf("exact quantum billed as %v", got)
	}
}

func TestInvocationPrice(t *testing.T) {
	p := LambdaLike()
	// 1 GiB for exactly 1 s: the listed GB-second price.
	got := p.Invocation(1<<30, simtime.Second)
	if !approx(got, 0.0000166667, 1e-12) {
		t.Errorf("1GB-1s bill = %v", got)
	}
	// 128 MB for 100 ms = 1/8 GB * 0.1 s.
	got = p.Invocation(128<<20, 100*simtime.Millisecond)
	if !approx(got, 0.0000166667/80, 1e-12) {
		t.Errorf("128MB-100ms bill = %v", got)
	}
}

func TestPerMillionIncludesRequestFee(t *testing.T) {
	p := LambdaLike()
	inv := p.Invocation(128<<20, 10*simtime.Millisecond)
	if got := p.PerMillion(128<<20, 10*simtime.Millisecond); !approx(got, inv*1e6+0.20, 1e-9) {
		t.Errorf("PerMillion = %v", got)
	}
}

func TestNewTiered(t *testing.T) {
	tp, err := NewTiered(LambdaLike(), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if tp.SlowFactor != 0.4 {
		t.Errorf("SlowFactor = %v, want 0.4", tp.SlowFactor)
	}
	if got := tp.BreakEvenSlowdown(); !approx(got, 2.5, 1e-12) {
		t.Errorf("BreakEvenSlowdown = %v", got)
	}
	if _, err := NewTiered(LambdaLike(), 0.5); err == nil {
		t.Error("ratio < 1 accepted")
	}
	bad := LambdaLike()
	bad.Quantum = 0
	if _, err := NewTiered(bad, 2.5); err == nil {
		t.Error("invalid base plan accepted")
	}
}

func TestTieredInvocationEndpoints(t *testing.T) {
	tp, _ := NewTiered(LambdaLike(), 2.5)
	mem := int64(1 << 30)
	d := simtime.Second
	dramOnly := tp.Plan.Invocation(mem, d)
	// All fast == DRAM-only price.
	if got := tp.Invocation(mem, 0, d); !approx(got, dramOnly, 1e-12) {
		t.Errorf("all-fast tiered bill %v != dram %v", got, dramOnly)
	}
	// All slow, no slowdown == 0.4x.
	if got := tp.Invocation(0, mem, d); !approx(got, dramOnly*0.4, 1e-12) {
		t.Errorf("all-slow bill = %v, want %v", got, dramOnly*0.4)
	}
}

func TestSaving(t *testing.T) {
	tp, _ := NewTiered(LambdaLike(), 2.5)
	mem := int64(1 << 30)
	d := simtime.Second
	// Full offload, no slowdown: 60% saving.
	s, err := tp.Saving(mem, mem, d, 1)
	if err != nil || !approx(s, 0.6, 1e-9) {
		t.Errorf("Saving = %v, %v", s, err)
	}
	// Full offload at the break-even slowdown: ~0 saving.
	s, err = tp.Saving(mem, mem, d, 2.5)
	if err != nil || !approx(s, 0, 1e-9) {
		t.Errorf("break-even saving = %v, %v", s, err)
	}
	// Worst case (nothing offloaded): zero saving, never negative.
	s, err = tp.Saving(mem, 0, d, 1)
	if err != nil || s != 0 {
		t.Errorf("no-offload saving = %v, %v", s, err)
	}
	if _, err := tp.Saving(mem, mem+1, d, 1); err == nil {
		t.Error("slow > total accepted")
	}
	if _, err := tp.Saving(mem, 0, d, 0.5); err == nil {
		t.Error("slowdown < 1 accepted")
	}
}

func TestTieredPerMillion(t *testing.T) {
	tp, _ := NewTiered(LambdaLike(), 2.5)
	inv := tp.Invocation(100<<20, 900<<20, 50*simtime.Millisecond)
	got := tp.PerMillion(100<<20, 900<<20, 50*simtime.Millisecond)
	if !approx(got, inv*1e6+0.20, 1e-9) {
		t.Errorf("tiered PerMillion = %v", got)
	}
}

// Property: the tiered bill is monotone — more slow bytes never cost more,
// and it is never above the DRAM-only bill at equal duration.
func TestTieredMonotoneProperty(t *testing.T) {
	tp, _ := NewTiered(LambdaLike(), 2.5)
	f := func(memRaw, slowARaw, slowBRaw uint16, ms uint16) bool {
		mem := int64(memRaw%2048+1) << 20
		a := int64(slowARaw) << 20 % (mem + 1)
		b := int64(slowBRaw) << 20 % (mem + 1)
		if a > b {
			a, b = b, a
		}
		d := simtime.Duration(ms+1) * simtime.Millisecond
		billA := tp.Invocation(mem-a, a, d)
		billB := tp.Invocation(mem-b, b, d)
		dram := tp.Plan.Invocation(mem, d)
		return billB <= billA+1e-15 && billA <= dram+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
