// Package pricing models vendor serverless billing (§II-D) and the
// dynamically discounted tiered plan TOSS enables (§III-D).
//
// Vendors bill memory in $/GB-second over fixed-size memory bundles (128 MB
// increments on Lambda-class platforms), rounded up per billing quantum,
// plus a per-request fee. TOSS's proposition is a *tiered* plan: the same
// schedule applied per tier, with the slow tier discounted by the tier cost
// ratio — in the worst case (everything in DRAM) the customer pays today's
// price, in every other case strictly less (§III-D).
package pricing

import (
	"fmt"
	"math"

	"toss/internal/simtime"
)

// Plan is a single-tier (DRAM-only) pricing schedule.
type Plan struct {
	// Name labels the plan.
	Name string
	// PerGBSecond is the memory-time price.
	PerGBSecond float64
	// PerMillionRequests is the request fee per 1e6 invocations.
	PerMillionRequests float64
	// IncrementBytes is the memory bundle granularity (128 MB).
	IncrementBytes int64
	// Quantum is the billing time granularity (1 ms on Lambda).
	Quantum simtime.Duration
}

// LambdaLike returns a Lambda-class schedule: $0.0000166667 per GB-second,
// $0.20 per million requests, 128 MB bundles, 1 ms quantum.
func LambdaLike() Plan {
	return Plan{
		Name:               "lambda-like",
		PerGBSecond:        0.0000166667,
		PerMillionRequests: 0.20,
		IncrementBytes:     128 << 20,
		Quantum:            simtime.Millisecond,
	}
}

// Validate checks the schedule.
func (p Plan) Validate() error {
	if p.PerGBSecond <= 0 {
		return fmt.Errorf("pricing: non-positive GB-second price")
	}
	if p.PerMillionRequests < 0 {
		return fmt.Errorf("pricing: negative request fee")
	}
	if p.IncrementBytes <= 0 {
		return fmt.Errorf("pricing: non-positive memory increment")
	}
	if p.Quantum <= 0 {
		return fmt.Errorf("pricing: non-positive quantum")
	}
	return nil
}

// roundUp rounds n up to a multiple of unit.
func roundUp(n, unit int64) int64 {
	return (n + unit - 1) / unit * unit
}

// BilledBytes rounds a memory size up to the bundle increment.
func (p Plan) BilledBytes(memBytes int64) int64 {
	if memBytes <= 0 {
		return p.IncrementBytes
	}
	return roundUp(memBytes, p.IncrementBytes)
}

// BilledDuration rounds an invocation duration up to the quantum.
func (p Plan) BilledDuration(d simtime.Duration) simtime.Duration {
	if d <= 0 {
		return p.Quantum
	}
	return simtime.Duration(roundUp(int64(d), int64(p.Quantum)))
}

// Invocation bills one invocation of a memBytes bundle running for d,
// excluding the request fee.
func (p Plan) Invocation(memBytes int64, d simtime.Duration) float64 {
	gb := float64(p.BilledBytes(memBytes)) / float64(1<<30)
	sec := p.BilledDuration(d).Seconds()
	return gb * sec * p.PerGBSecond
}

// PerMillion bills one million identical invocations, request fee included.
func (p Plan) PerMillion(memBytes int64, d simtime.Duration) float64 {
	return p.Invocation(memBytes, d)*1e6 + p.PerMillionRequests
}

// Tiered extends a plan with a discounted slow tier.
type Tiered struct {
	Plan
	// SlowFactor multiplies the GB-second price for slow-tier memory
	// (0.4 at the paper's 2.5x cost ratio).
	SlowFactor float64
}

// NewTiered derives the tiered plan from a base plan and the tier cost
// ratio.
func NewTiered(base Plan, costRatio float64) (Tiered, error) {
	if err := base.Validate(); err != nil {
		return Tiered{}, err
	}
	if costRatio < 1 {
		return Tiered{}, fmt.Errorf("pricing: cost ratio %v < 1", costRatio)
	}
	return Tiered{Plan: base, SlowFactor: 1 / costRatio}, nil
}

// Invocation bills one tiered invocation: fast and slow bytes are billed at
// their own rates over the (slowdown-inflated) duration. The fast+slow
// split is billed at page granularity inside the configured bundle — the
// "dynamically calculated and reduced memory price" of §III-D.
func (t Tiered) Invocation(fastBytes, slowBytes int64, d simtime.Duration) float64 {
	sec := t.BilledDuration(d).Seconds()
	// The bundle is rounded as a whole; the split inside it is exact.
	total := t.BilledBytes(fastBytes + slowBytes)
	if fastBytes > total {
		fastBytes = total
	}
	slow := total - fastBytes
	fastGB := float64(fastBytes) / float64(1<<30)
	slowGB := float64(slow) / float64(1<<30)
	return (fastGB + slowGB*t.SlowFactor) * sec * t.PerGBSecond
}

// PerMillion bills one million identical tiered invocations.
func (t Tiered) PerMillion(fastBytes, slowBytes int64, d simtime.Duration) float64 {
	return t.Invocation(fastBytes, slowBytes, d)*1e6 + t.PerMillionRequests
}

// Saving returns the relative saving of the tiered bill versus the
// DRAM-only bill for the same bundle: dram is billed at duration d, tiered
// at d*slowdown with slowBytes offloaded.
func (t Tiered) Saving(memBytes, slowBytes int64, d simtime.Duration, slowdown float64) (float64, error) {
	if slowdown < 1 {
		return 0, fmt.Errorf("pricing: slowdown %v < 1", slowdown)
	}
	if slowBytes < 0 || slowBytes > memBytes {
		return 0, fmt.Errorf("pricing: slow bytes %d outside [0, %d]", slowBytes, memBytes)
	}
	dram := t.Plan.Invocation(memBytes, d)
	tiered := t.Invocation(memBytes-slowBytes, slowBytes, d.Scale(slowdown))
	if dram == 0 {
		return 0, nil
	}
	return 1 - tiered/dram, nil
}

// BreakEvenSlowdown returns the slowdown at which a fully-offloaded
// invocation costs the same as DRAM-only — the paper's cost-ratio bound
// (2.5x at the default ratio). Rounding to billing quanta is ignored.
func (t Tiered) BreakEvenSlowdown() float64 {
	if t.SlowFactor == 0 {
		return math.Inf(1)
	}
	return 1 / t.SlowFactor
}
