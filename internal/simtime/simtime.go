// Package simtime provides the virtual-time primitives used throughout the
// TOSS simulator. All latencies, setup times, and invocation durations in the
// repository are expressed in virtual nanoseconds accumulated by a Clock;
// nothing in the model reads the wall clock, so every experiment is exactly
// reproducible.
package simtime

import (
	"fmt"
	"time"
)

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so results format naturally, but is a distinct type to keep
// virtual and wall-clock time from mixing by accident.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns the duration as an integer nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Microseconds returns the duration in microseconds as a float.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration in milliseconds as a float.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration in seconds as a float.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts the virtual duration to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration like time.Duration does.
func (d Duration) String() string { return d.Std().String() }

// FromStd converts a time.Duration into a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Scale multiplies the duration by a dimensionless factor, rounding to the
// nearest nanosecond. Factors below zero are rejected because no model in
// this repository produces negative time.
func (d Duration) Scale(f float64) Duration {
	if f < 0 {
		panic(fmt.Sprintf("simtime: negative scale factor %v", f))
	}
	return Duration(float64(d)*f + 0.5)
}

// Clock accumulates virtual time for one execution context (for example one
// vCPU running one function invocation). The zero value is a clock at t=0.
//
// Clock is not safe for concurrent use; each concurrent invocation owns its
// own Clock, and shared-resource contention is modeled analytically (see
// package mem and disk) rather than by synchronizing clocks.
type Clock struct {
	now Duration
}

// NewClock returns a clock starting at t=0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d and returns the new time. Negative
// advances panic: the simulator only ever moves forward.
func (c *Clock) Advance(d Duration) Duration {
	if d < 0 {
		panic(fmt.Sprintf("simtime: cannot advance clock by negative duration %v", d))
	}
	c.now += d
	return c.now
}

// Reset rewinds the clock to t=0 so an execution context can be reused.
func (c *Clock) Reset() { c.now = 0 }

// Stopwatch measures a span of virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start Duration
}

// StartStopwatch begins measuring from the clock's current time.
func StartStopwatch(c *Clock) Stopwatch { return Stopwatch{clock: c, start: c.Now()} }

// Elapsed reports the virtual time accumulated since the stopwatch started.
func (s Stopwatch) Elapsed() Duration { return s.clock.Now() - s.start }
