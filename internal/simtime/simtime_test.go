package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", Microsecond)
	}
	if Millisecond != 1_000_000 {
		t.Fatalf("Millisecond = %d, want 1e6", Millisecond)
	}
	if Second != 1_000_000_000 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Nanoseconds(); got != 1_500_000 {
		t.Errorf("Nanoseconds() = %d, want 1500000", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds() = %v, want 1500", got)
	}
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := d.Seconds(); got != 0.0015 {
		t.Errorf("Seconds() = %v, want 0.0015", got)
	}
}

func TestDurationString(t *testing.T) {
	if got := (2500 * Microsecond).String(); got != "2.5ms" {
		t.Errorf("String() = %q, want 2.5ms", got)
	}
}

func TestFromStd(t *testing.T) {
	if got := FromStd(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromStd(3ms) = %v, want 3ms", got)
	}
}

func TestScale(t *testing.T) {
	d := 100 * Nanosecond
	if got := d.Scale(2.5); got != 250 {
		t.Errorf("Scale(2.5) = %v, want 250ns", got)
	}
	if got := d.Scale(0); got != 0 {
		t.Errorf("Scale(0) = %v, want 0", got)
	}
	// Rounding, not truncation.
	if got := (3 * Nanosecond).Scale(0.5); got != 2 {
		t.Errorf("Scale rounding: got %v, want 2", got)
	}
}

func TestScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(-1) did not panic")
		}
	}()
	Duration(1).Scale(-1)
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(10 * Microsecond)
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != 15*Microsecond {
		t.Errorf("Now() = %v, want 15µs", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset did not rewind clock: %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time7())
	sw := StartStopwatch(c)
	c.Advance(42 * Millisecond)
	if got := sw.Elapsed(); got != 42*Millisecond {
		t.Errorf("Elapsed() = %v, want 42ms", got)
	}
}

func time7() Duration { return 7 * Second }

// Property: advancing by a then b equals advancing by a+b.
func TestClockAdvanceAdditiveProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		c1, c2 := NewClock(), NewClock()
		c1.Advance(Duration(a))
		c1.Advance(Duration(b))
		c2.Advance(Duration(a) + Duration(b))
		return c1.Now() == c2.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scale by integer factor equals repeated addition.
func TestScaleIntegerProperty(t *testing.T) {
	f := func(base uint16, n uint8) bool {
		d := Duration(base)
		want := Duration(0)
		for i := 0; i < int(n); i++ {
			want += d
		}
		return d.Scale(float64(n)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
