package workload

import (
	"testing"
)

// BenchmarkTraceCompile measures compiling a workload.Spec into an access
// trace — the per-cell cost every experiment pays before replaying. The
// varying seed defeats the trace cache, so this times the compiler itself.
func BenchmarkTraceCompile(b *testing.B) {
	spec := ByNameMust("json_load_dump")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Trace(IV, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCompileCached measures the memoized path: the same
// (function, level, seed) cell requested repeatedly, as the experiment
// sweeps do.
func BenchmarkTraceCompileCached(b *testing.B) {
	spec := ByNameMust("json_load_dump")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Trace(IV, 1); err != nil {
			b.Fatal(err)
		}
	}
}
