package workload

import (
	"fmt"
	"sort"

	"toss/internal/guest"
)

// registry holds the ten Table I functions, keyed by name.
var registry = map[string]*Spec{}

func register(s *Spec) *Spec {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate function %q", s.Name))
	}
	registry[s.Name] = s
	return s
}

// Registry returns all functions in Table I order.
func Registry() []*Spec {
	order := []string{
		"float_operation", "pyaes", "json_load_dump", "compress", "linpack",
		"matmul", "image_processing", "pagerank", "lr_serving", "lr_training",
	}
	out := make([]*Spec, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Names returns all registered function names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName looks a function up by its Table I name.
func ByName(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// ByNameMust looks a function up, panicking on unknown names; for callers
// holding compile-time-constant names.
func ByNameMust(name string) *Spec {
	s, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown function %q", name))
	}
	return s
}

// kib and mib convert sizes for input tables.
func kib(n int64) int64 { return n << 10 }
func mib(n int64) int64 { return n << 20 }

// FloatOperation: floating point ops for N numbers. Tiny footprint, pure
// interpreter loop — CPU-bound and short-running; the canonical "runs in the
// slow tier for free" function (Fig. 2 observation #1).
var FloatOperation = register(&Spec{
	Name:        "float_operation",
	Description: "Floating point ops for N numbers",
	MemBytes:    mib(128),
	InputType:   "N",
	InputLabels: [4]string{"10", "100", "1000", "10000"},
	runtime:     defaultRuntime(60),
	body: func(b *builder, lv Level) {
		n := []int64{10, 100, 1000, 10000}[lv]
		arr := b.allocBytes(n * 8)
		repeat := b.jitter(60, 0.15)
		// sin/cos/sqrt per element: heavy CPU per line, near-perfect reuse.
		b.seqRead(arr, repeat, 0.95, 18)
		b.seqWrite(arr, repeat/2+1, 0.95, 10)
	},
})

// PyAES: pure-Python AES encryption of a text. Interpreter-dominated; the
// S-box tables live in cache. Footprint barely grows with input.
var PyAES = register(&Spec{
	Name:        "pyaes",
	Description: "AES text encryption",
	MemBytes:    mib(128),
	InputType:   "Text",
	InputLabels: [4]string{"64 chars", "256 chars", "1024 chars", "4096 chars"},
	runtime:     defaultRuntime(400),
	body: func(b *builder, lv Level) {
		chars := []int64{64, 256, 1024, 4096}[lv]
		text := b.allocBytes(chars)
		tables := b.allocBytes(kib(32)) // S-boxes + round keys + scratch
		blocks := int(chars / 16)
		if blocks < 1 {
			blocks = 1
		}
		repeat := b.jitter(blocks, 0.1)
		b.randRead(tables, 32, repeat, 0.97, 30)
		b.seqRead(text, b.jitter(10, 0.1), 0.9, 12)
		b.seqWrite(text, b.jitter(10, 0.1), 0.9, 8)
	},
})

// JSONLoadDump: read-modify-write N JSON files. Footprint scales with the
// file count; parsing scatters small objects over the heap.
var JSONLoadDump = register(&Spec{
	Name:        "json_load_dump",
	Description: "Read-Modify-Write JSON files",
	MemBytes:    mib(128),
	InputType:   "JSON File",
	InputLabels: [4]string{"1 file", "10 files", "20 files", "40 files"},
	runtime:     defaultRuntime(10),
	body: func(b *builder, lv Level) {
		files := []int64{1, 10, 20, 40}[lv]
		const fileBytes = int64(1) << 19 // 512 KiB per JSON file
		for i := int64(0); i < files; i++ {
			buf := b.allocBytes(fileBytes)
			objects := b.allocBytes(3 * fileBytes / 2) // parsed object graph
			// json.load: C parser streaming the buffer, Python-object churn.
			b.seqRead(buf, 1, 0.3, 150)
			// Parse: bump-pointer object allocation is sequential writes
			// with heavy per-object compute.
			b.seqWrite(objects, b.jitter(4, 0.2), 0.70, 100)
			// Modify: scattered reads over the object graph.
			b.randRead(objects, 8, b.jitter(2, 0.2), 0.85, 80)
			// Dump.
			b.seqRead(objects, 1, 0.55, 90)
			b.seqWrite(buf, 1, 0.3, 120)
		}
	},
})

// Compress: stream compression of a file. Pure streaming with heavy
// per-byte compute — negligible slowdown fully offloaded (Fig. 2).
var Compress = register(&Spec{
	Name:        "compress",
	Description: "File compression",
	MemBytes:    mib(256),
	InputType:   "File",
	InputLabels: [4]string{"10 MB", "20 MB", "41 MB", "82 MB"},
	runtime:     defaultRuntime(12),
	body: func(b *builder, lv Level) {
		in := b.allocBytes(mib([]int64{10, 20, 41, 82}[lv]))
		out := b.allocBytes(in.Bytes() / 2)
		window := b.allocBytes(kib(256)) // LZ dictionary window, cache-hot
		// zlib-style compression: ~1 µs of matching work per 64 B line
		// dwarfs the memory service — the paper's "negligible slowdown
		// fully offloaded" function.
		b.seqRead(in, 1, 0.25, 800)
		b.randRead(window, 64, b.jitter(int(in.Pages/64)+1, 0.1), 0.96, 20)
		b.seqWrite(out, 1, 0.25, 400)
	},
})

// Linpack: solve Ax=b. O(n^3) compute over an n^2 matrix with strong
// blocking — high reuse shields most latency.
var Linpack = register(&Spec{
	Name:        "linpack",
	Description: "Solves Ax=b for matrix A",
	MemBytes:    mib(256),
	InputType:   "Dimension",
	InputLabels: [4]string{"100", "500", "1000", "2000"},
	runtime:     defaultRuntime(60),
	body: func(b *builder, lv Level) {
		n := []int64{100, 500, 1000, 2000}[lv]
		matrix := b.allocBytes(n * n * 8)
		vec := b.allocBytes(2 * n * 8)
		passes := b.jitter(int(n/125)+2, 0.1)
		// Panel factorization: mostly-sequential sweeps with good reuse.
		b.seqRead(matrix, passes, 0.93, 8)
		b.seqWrite(matrix, passes/2+1, 0.93, 9)
		// Pivot search: scattered column walks over a cached panel.
		b.randRead(matrix, 2, passes, 0.90, 3)
		b.seqRead(vec, passes*4, 0.95, 4)
	},
})

// MatMul: C = A x B. The output tiles and B panels are re-touched heavily —
// a clear hot subset that TOSS keeps in DRAM (Table II: 92% offloaded).
var MatMul = register(&Spec{
	Name:        "matmul",
	Description: "Product of two 2D matrices",
	MemBytes:    mib(256),
	InputType:   "Dimension",
	InputLabels: [4]string{"100", "500", "1000", "2000"},
	runtime:     defaultRuntime(50),
	body: func(b *builder, lv Level) {
		n := []int64{100, 500, 1000, 2000}[lv]
		bytes := n * n * 8
		a := b.allocBytes(bytes)
		bm := b.allocBytes(bytes)
		c := b.allocBytes(bytes)
		sweeps := b.jitter(int(n/170)+2, 0.1)
		// A streamed once per block column; panel reuse shields latency.
		b.seqRead(a, sweeps, 0.90, 4)
		// B walked down columns: strided but tile-cached.
		b.randRead(bm, 8, sweeps, 0.95, 3)
		// C accumulated tile by tile — row-major within a tile, re-written
		// every sweep: the hot tier-worthy subset.
		b.chunked(c, 4, func(chunk guest.Region, i int) {
			b.seqWrite(chunk, b.jitter(sweeps*4, 0.1), 0.80, 4)
		})
	},
})

// ImageProcessing: flip an image. Decode streams, the flip walks rows in
// reverse order (cache-hostile), and run-to-run variability is high — the
// paper calls out its latency variability repeatedly.
var ImageProcessing = register(&Spec{
	Name:        "image_processing",
	Description: "Flips the input image",
	MemBytes:    mib(256),
	InputType:   "Image",
	InputLabels: [4]string{"43 kB", "315 kB", "1.8 MB", "4.1 MB"},
	runtime:     defaultRuntime(8),
	body: func(b *builder, lv Level) {
		fileBytes := []int64{kib(43), kib(315), mib(1) + kib(800), mib(4) + kib(100)}[lv]
		bitmapBytes := fileBytes * 8 // decoded RGB
		in := b.allocBytes(fileBytes)
		bitmap := b.allocBytes(bitmapBytes)
		flipped := b.allocBytes(bitmapBytes)
		out := b.allocBytes(fileBytes)
		b.seqRead(in, 1, 0.3, 40)
		// Decode: sequential write, JPEG decode compute per line.
		b.seqWrite(bitmap, b.jitter(2, 0.3), 0.45, 120)
		// Flip: rows copied in reverse order — sequential at line
		// granularity, moderate compute, high run-to-run variance.
		b.seqRead(bitmap, b.jitter(3, 0.3), 0.35, 25)
		b.seqWrite(flipped, b.jitter(3, 0.3), 0.60, 30)
		// Encode.
		b.seqRead(flipped, 1, 0.4, 50)
		b.seqWrite(out, 1, 0.3, 40)
	},
})

// PageRank: iterative rank computation over a large graph. Uniformly
// intense random access across the whole footprint — the paper's worst case
// (only 49.1% offloadable, 25% slowdown at min cost).
var PageRank = register(&Spec{
	Name:        "pagerank",
	Description: "Pagerank on a graph",
	MemBytes:    mib(1024),
	InputType:   "Vertices",
	InputLabels: [4]string{"90,000", "180,000", "360,000", "720,000"},
	runtime:     defaultRuntime(25),
	body: func(b *builder, lv Level) {
		v := []int64{90_000, 180_000, 360_000, 720_000}[lv]
		const edgesPerVertex = 150
		edges := b.allocBytes(v * edgesPerVertex * 8)
		offsets := b.allocBytes(v * 8)
		ranks := b.allocBytes(2 * v * 8)
		iters := b.jitter(12, 0.1)
		// The high-degree core of the graph (most edges, most accesses) and
		// a lower-degree tail: "the same intensity across most of its
		// working set" (§VI-C1), with only the tail cheap enough to offload.
		core, tail := edges.Split(edges.Pages * 60 / 100)
		b.randRead(core, 64, iters, 0.12, 1)
		b.randRead(tail, 12, iters, 0.12, 1)
		b.seqRead(offsets, iters, 0.6, 1)
		b.randRead(ranks, 64, iters*edgesPerVertex/8, 0.30, 1)
		b.randWrite(ranks, 64, iters, 0.30, 1)
	},
})

// lrSizes returns (modelBytes, datasetBytes) per level for the logistic
// regression pair.
func lrSizes(lv Level) (int64, int64) {
	model := []int64{kib(51), kib(83), kib(128), kib(192)}[lv]
	data := []int64{mib(10), mib(20), mib(41), mib(82)}[lv]
	return model, data
}

// LRServing: logistic regression inference. One streaming pass over the
// dataset; the tiny model is white-hot.
var LRServing = register(&Spec{
	Name:        "lr_serving",
	Description: "Logistic regression inferencing",
	MemBytes:    mib(1024),
	InputType:   "Model & Dataset Files",
	InputLabels: [4]string{"51 kB/10 MB", "83 kB/20 MB", "128 kB/41 MB", "192 kB/82 MB"},
	runtime:     defaultRuntime(80),
	body: func(b *builder, lv Level) {
		modelBytes, dataBytes := lrSizes(lv)
		model := b.allocBytes(modelBytes)
		data := b.allocBytes(dataBytes)
		preds := b.allocBytes(dataBytes / 128)
		rows := int(dataBytes / 1024)
		b.seqRead(data, 1, 0.40, 15)
		// Model lookups per row: latency-bound, the hot fast-tier slice.
		b.randRead(model, 64, b.jitter(rows/64+1, 0.1), 0.92, 2)
		b.seqWrite(preds, 1, 0.6, 5)
	},
})

// LRTraining: logistic regression training. Several epochs over the
// dataset with gradient writes into the model.
var LRTraining = register(&Spec{
	Name:        "lr_training",
	Description: "Logistic regression training",
	MemBytes:    mib(1024),
	InputType:   "Model & Dataset Files",
	InputLabels: [4]string{"51 kB/10 MB", "83 kB/20 MB", "128 kB/41 MB", "192 kB/82 MB"},
	runtime:     defaultRuntime(20),
	body: func(b *builder, lv Level) {
		modelBytes, dataBytes := lrSizes(lv)
		model := b.allocBytes(modelBytes)
		data := b.allocBytes(dataBytes)
		grads := b.allocBytes(modelBytes)
		epochs := b.jitter(8, 0.1)
		rows := int(dataBytes / 1024)
		// SGD epochs stream the dataset; vectorized gradient math keeps
		// the model and gradient buffers cache-resident.
		b.seqRead(data, epochs, 0.75, 40)
		b.randRead(model, 64, b.jitter(rows/48+1, 0.1), 0.97, 20)
		b.randWrite(grads, 64, b.jitter(rows/48+1, 0.1), 0.97, 20)
	},
})
