package workload

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toss/internal/par"
	"toss/internal/simtime"
)

var updateArrivals = flag.Bool("update-arrivals", false, "rewrite the arrivals golden file")

// arrivalsFixtures is one config per generator, shared by every test below
// so the golden file pins all four processes at once. New fixtures append at
// the end, keeping earlier golden-file sections byte-stable.
func arrivalsFixtures() []ArrivalsConfig {
	fns := []string{"float_operation", "pyaes", "compress", "matmul"}
	return []ArrivalsConfig{
		{Process: ProcPoisson, Horizon: 120 * simtime.Second, MeanIAT: 400 * simtime.Millisecond, Functions: fns, Seed: 7},
		{Process: ProcDiurnal, Horizon: 120 * simtime.Second, MeanIAT: 400 * simtime.Millisecond, Functions: fns, Seed: 7,
			Weights: []float64{4, 2, 1, 1}},
		{Process: ProcFlash, Horizon: 120 * simtime.Second, MeanIAT: 400 * simtime.Millisecond, Functions: fns, Seed: 7},
		{Process: ProcDiurnalFlash, Horizon: 120 * simtime.Second, MeanIAT: 400 * simtime.Millisecond, Functions: fns, Seed: 7,
			Weights: []float64{4, 2, 1, 1}},
	}
}

// renderArrivals serializes a schedule to the canonical text form the
// golden file stores: one line per arrival, every field explicit.
func renderArrivals(c ArrivalsConfig, specs []ArrivalSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s seed=%d n=%d\n", c.Process, c.Seed, len(specs))
	for _, s := range specs {
		fmt.Fprintf(&b, "%d %s %d %d\n", int64(s.At), s.Function, int(s.Level), s.Seed)
	}
	return b.String()
}

// TestArrivalsGolden pins the exact byte output of every generator for a
// fixed seed. A diff here means the generators' determinism contract broke:
// refresh with `go test ./internal/workload -update-arrivals` only if the
// change is intended, and expect ext9 output to shift with it.
func TestArrivalsGolden(t *testing.T) {
	var b strings.Builder
	for _, c := range arrivalsFixtures() {
		specs, err := Arrivals(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Process, err)
		}
		b.WriteString(renderArrivals(c, specs))
	}
	got := []byte(b.String())

	path := filepath.Join("testdata", "arrivals_golden.txt")
	if *updateArrivals {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/workload -update-arrivals` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("arrival schedules drifted from golden file (run with -update-arrivals if intended); got %d bytes, want %d", len(got), len(want))
	}
}

// TestArrivalsRepeatable regenerates each schedule several times and under
// a parallel worker pool, asserting byte-identical output every time —
// the property the cluster layer relies on for serial-vs-parallel
// determinism of ext9.
func TestArrivalsRepeatable(t *testing.T) {
	for _, c := range arrivalsFixtures() {
		specs, err := Arrivals(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Process, err)
		}
		base := renderArrivals(c, specs)
		if len(specs) == 0 {
			t.Fatalf("%s: empty schedule", c.Process)
		}

		for run := 0; run < 3; run++ {
			again, err := Arrivals(c)
			if err != nil {
				t.Fatalf("%s run %d: %v", c.Process, run, err)
			}
			if renderArrivals(c, again) != base {
				t.Fatalf("%s: run %d differs from first generation", c.Process, run)
			}
		}

		// Generate concurrently on a 4-worker pool: every worker must see
		// the same bytes as the serial run.
		pool := par.New(4)
		rendered, err := par.Map(pool, make([]struct{}, 8), func(i int, _ struct{}) (string, error) {
			specs, err := Arrivals(c)
			if err != nil {
				return "", err
			}
			return renderArrivals(c, specs), nil
		})
		if err != nil {
			t.Fatalf("%s: parallel generation: %v", c.Process, err)
		}
		for i, r := range rendered {
			if r != base {
				t.Fatalf("%s: parallel worker %d produced different bytes", c.Process, i)
			}
		}
	}
}

// TestArrivalsOrdering asserts the schedules are time-sorted and inside the
// horizon, and that flash schedules actually concentrate extra traffic
// (more arrivals than the Poisson baseline at the same mean IAT).
func TestArrivalsOrdering(t *testing.T) {
	counts := map[Process]int{}
	for _, c := range arrivalsFixtures() {
		specs, err := Arrivals(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Process, err)
		}
		counts[c.Process] = len(specs)
		for i, s := range specs {
			if s.At <= 0 || s.At >= c.Horizon {
				t.Fatalf("%s: arrival %d at %v outside (0, %v)", c.Process, i, s.At, c.Horizon)
			}
			if i > 0 && s.At < specs[i-1].At {
				t.Fatalf("%s: arrivals out of order at index %d", c.Process, i)
			}
			if s.Level < I || s.Level > IV {
				t.Fatalf("%s: arrival %d has invalid level %d", c.Process, i, s.Level)
			}
			found := false
			for _, fn := range c.Functions {
				if s.Function == fn {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: arrival %d names unlisted function %q", c.Process, i, s.Function)
			}
		}
	}
	if counts[ProcFlash] <= counts[ProcPoisson] {
		t.Fatalf("flash schedule (%d arrivals) not denser than poisson baseline (%d)", counts[ProcFlash], counts[ProcPoisson])
	}
}

// TestArrivalsValidate exercises every rejection path.
func TestArrivalsValidate(t *testing.T) {
	good := arrivalsFixtures()[0]
	cases := []struct {
		name   string
		mutate func(*ArrivalsConfig)
	}{
		{"zero horizon", func(c *ArrivalsConfig) { c.Horizon = 0 }},
		{"zero mean IAT", func(c *ArrivalsConfig) { c.MeanIAT = 0 }},
		{"no functions", func(c *ArrivalsConfig) { c.Functions = nil }},
		{"unknown function", func(c *ArrivalsConfig) { c.Functions = []string{"nope"} }},
		{"weight count mismatch", func(c *ArrivalsConfig) { c.Weights = []float64{1} }},
		{"negative weight", func(c *ArrivalsConfig) { c.Weights = []float64{1, -1, 1, 1} }},
		{"negative flash factor", func(c *ArrivalsConfig) { c.FlashFactor = -1 }},
		{"hot share above one", func(c *ArrivalsConfig) { c.FlashHotShare = 1.5 }},
	}
	for _, tc := range cases {
		c := good
		tc.mutate(&c)
		if _, err := Arrivals(c); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := ParseProcess("nope"); err == nil {
		t.Error("ParseProcess accepted unknown name")
	}
	for _, p := range Processes() {
		got, err := ParseProcess(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProcess(%q) = %v, %v", p.String(), got, err)
		}
	}
}
