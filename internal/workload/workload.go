// Package workload implements the ten serverless functions of the paper's
// Table I (drawn from FunctionBench and SeBS) as deterministic generators of
// page-granular access traces.
//
// A workload does not execute real Python; it emits the memory behaviour the
// real function exhibits — footprint growth with input size, hot-subset
// skew, streaming vs random phases, read/write mix, cache reuse, and
// guest-allocator placement jitter — because that access structure is the
// only signal snapshot systems (TOSS, REAP, FaaSnap) consume.
//
// Every function's trace has two parts:
//
//  1. a language-runtime prologue touching part of the boot image (the
//     Python interpreter, libraries), with a small hot core whose intensity
//     is a per-function knob — this is the memory that makes tiny-but-hot
//     fast-tier slices worthwhile for some functions (Table II's 92-96%
//     rows) and irrelevant for others (the 100% rows); and
//  2. the function body over heap allocations sized from the input level.
//
// Inputs I..IV follow Table I exactly; guest memory sizes are the paper's
// 128 MB / 256 MB / 1024 MB configurations with a 48 MB boot image.
package workload

import (
	"container/list"
	"fmt"
	"math/rand"
	"sync"

	"toss/internal/access"
	"toss/internal/guest"
)

// Level selects one of the four input sizes of Table I.
type Level int

// The four input levels.
const (
	I Level = iota
	II
	III
	IV
)

// Levels lists all input levels in order.
var Levels = []Level{I, II, III, IV}

// String formats the level as the paper does (Roman numerals).
func (l Level) String() string {
	switch l {
	case I:
		return "I"
	case II:
		return "II"
	case III:
		return "III"
	case IV:
		return "IV"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is one of the four defined levels.
func (l Level) Valid() bool { return l >= I && l <= IV }

// BootImageBytes is the guest boot image (kernel + Python runtime +
// libraries) shared by all functions.
const BootImageBytes = 48 << 20

// Spec describes one Table I function.
type Spec struct {
	// Name is the paper's function name (e.g. "matmul").
	Name string
	// Description is Table I's description column.
	Description string
	// MemBytes is the configured guest memory size.
	MemBytes int64
	// InputType is Table I's input type column.
	InputType string
	// InputLabels are the four input descriptions.
	InputLabels [4]string
	// runtime tunes the interpreter prologue (see runtimeProfile).
	runtime runtimeProfile
	// body emits the function body's events.
	body func(b *builder, lv Level)

	// Layout memo: specs are registry singletons and the layout is a pure
	// function of MemBytes, so it is computed at most once.
	layoutOnce sync.Once
	layout     guest.Layout
	layoutErr  error
}

// Layout returns the guest memory layout for this function. The result is
// memoized per spec.
func (s *Spec) Layout() (guest.Layout, error) {
	s.layoutOnce.Do(func() {
		s.layout, s.layoutErr = guest.NewLayout(s.MemBytes, BootImageBytes)
	})
	return s.layout, s.layoutErr
}

// Trace generates the access trace of one invocation with the given input
// level. The seed drives guest-allocator jitter and run-to-run variability;
// the same (level, seed) pair always yields the same trace.
//
// Compiled traces are cached in a bounded LRU keyed by (function, level,
// seed): the experiment sweeps replay the same cells hundreds of times and
// determinism makes a cache hit indistinguishable from a recompile. The
// returned trace is shared — treat it (and its memoized views) as
// read-only.
func (s *Spec) Trace(lv Level, seed int64) (*access.Trace, error) {
	if !lv.Valid() {
		return nil, fmt.Errorf("workload: invalid input level %d", int(lv))
	}
	key := traceKey{fn: s.Name, lv: lv, seed: seed}
	if tr, ok := traceCache.lookup(key); ok {
		return tr, nil
	}
	layout, err := s.Layout()
	if err != nil {
		return nil, err
	}
	b := &builder{
		layout: layout,
		alloc:  guest.NewAllocator(layout, seed),
		rng:    rand.New(rand.NewSource(seed ^ 0x7055_0001)),
		trace:  &access.Trace{},
	}
	s.runtime.emit(b)
	s.body(b, lv)
	if b.err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, b.err)
	}
	traceCache.store(key, b.trace)
	return b.trace, nil
}

// traceKey identifies one compiled-trace cell.
type traceKey struct {
	fn   string
	lv   Level
	seed int64
}

// traceLRU is a mutex-guarded bounded LRU of compiled traces. Concurrent
// misses on the same key may compile the same trace twice; both results are
// identical (compilation is deterministic), so the last store simply wins —
// cheaper than singleflight for a compile measured in tens of microseconds.
type traceLRU struct {
	mu    sync.Mutex
	limit int
	elems map[traceKey]*list.Element
	order *list.List // front = most recently used
}

type traceCacheEntry struct {
	key traceKey
	tr  *access.Trace
}

// traceCacheLimit bounds the cache to a few hundred cells; a full
// `tossctl all` run cycles through well under that many distinct
// (function, level, seed) combinations per experiment.
const traceCacheLimit = 256

var traceCache = traceLRU{
	limit: traceCacheLimit,
	elems: map[traceKey]*list.Element{},
	order: list.New(),
}

func (c *traceLRU) lookup(k traceKey) (*access.Trace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.elems[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*traceCacheEntry).tr, true
}

func (c *traceLRU) store(k traceKey, tr *access.Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[k]; ok {
		el.Value.(*traceCacheEntry).tr = tr
		c.order.MoveToFront(el)
		return
	}
	c.elems[k] = c.order.PushFront(&traceCacheEntry{key: k, tr: tr})
	for len(c.elems) > c.limit {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.elems, oldest.Value.(*traceCacheEntry).key)
	}
}

// len reports the number of cached traces (for tests).
func (c *traceLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.elems)
}

// runtimeProfile shapes the interpreter prologue.
type runtimeProfile struct {
	// warmBytes of the boot image are touched once or twice (imports,
	// relocations); always cheap and cold.
	warmBytes int64
	// hotBytes is the interpreter's hot core (bytecode dispatch, small
	// objects); its repeat count scales with how interpreter-bound the
	// function is.
	hotBytes int64
	// hotRepeat is the touch count per hot line.
	hotRepeat int
	// hotHit is the cache hit ratio of the hot core.
	hotHit float64
}

// defaultRuntime is a moderately interpreter-bound prologue.
func defaultRuntime(hotRepeat int) runtimeProfile {
	return runtimeProfile{
		warmBytes: 24 << 20,
		hotBytes:  4 << 20,
		hotRepeat: hotRepeat,
		// The interpreter's hot objects are mostly cache-resident; only the
		// residual miss traffic is tier-sensitive.
		hotHit: 0.95,
	}
}

func (r runtimeProfile) emit(b *builder) {
	warm := guest.Region{Start: b.layout.BootImage.Start, Pages: guest.PagesForBytes(r.warmBytes)}
	hot := guest.Region{Start: warm.End(), Pages: guest.PagesForBytes(r.hotBytes)}
	// Library scan: sequential, touched once; import machinery is mostly
	// compute (bytecode unmarshalling, relocation).
	b.event(access.Event{
		Region: warm, LinesPerPage: 8, Repeat: 1,
		Kind: access.Read, Pattern: access.Sequential, HitRatio: 0.2, CPUPerLine: 30,
	})
	// Interpreter hot core: bytecode dispatch over small objects — heavy
	// compute per touch, high cache residency.
	b.event(access.Event{
		Region: hot, LinesPerPage: 32, Repeat: r.hotRepeat,
		Kind: access.Read, Pattern: access.Random, HitRatio: r.hotHit, CPUPerLine: 20,
	})
}

// builder accumulates trace events and carries the allocator and rng.
type builder struct {
	layout guest.Layout
	alloc  *guest.Allocator
	rng    *rand.Rand
	trace  *access.Trace
	err    error
}

// allocBytes reserves heap, recording the first error and returning an
// empty region afterwards so workload code stays linear.
func (b *builder) allocBytes(n int64) guest.Region {
	if b.err != nil {
		return guest.Region{}
	}
	r, err := b.alloc.AllocBytes(n)
	if err != nil {
		b.err = err
		return guest.Region{}
	}
	return r
}

func (b *builder) event(e access.Event) {
	if b.err != nil || e.Region.Empty() {
		return
	}
	b.trace.Append(e)
}

// jitter returns n scaled by a seeded factor in [1-amp, 1+amp], at least 1.
// It models run-to-run execution variability (Observation #3).
func (b *builder) jitter(n int, amp float64) int {
	f := 1 + (b.rng.Float64()*2-1)*amp
	v := int(float64(n)*f + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// chunked splits a region into `parts` near-equal chunks and calls fn with
// each chunk and its index, letting workloads vary intensity across a
// buffer (hot fronts, cold tails).
func (b *builder) chunked(r guest.Region, parts int, fn func(chunk guest.Region, i int)) {
	if r.Empty() || parts < 1 {
		return
	}
	per := r.Pages / int64(parts)
	if per < 1 {
		per = 1
		parts = int(r.Pages)
	}
	for i := 0; i < parts; i++ {
		start := r.Start + guest.PageID(int64(i)*per)
		pages := per
		if i == parts-1 {
			pages = int64(r.End() - start)
		}
		if pages <= 0 {
			break
		}
		fn(guest.Region{Start: start, Pages: pages}, i)
	}
}

// seqRead emits a streaming read over r.
func (b *builder) seqRead(r guest.Region, repeat int, hit, cpu float64) {
	b.event(access.Event{
		Region: r, LinesPerPage: guest.LinesPerPage, Repeat: repeat,
		Kind: access.Read, Pattern: access.Sequential, HitRatio: hit, CPUPerLine: cpu,
	})
}

// seqWrite emits a streaming write over r.
func (b *builder) seqWrite(r guest.Region, repeat int, hit, cpu float64) {
	b.event(access.Event{
		Region: r, LinesPerPage: guest.LinesPerPage, Repeat: repeat,
		Kind: access.Write, Pattern: access.Sequential, HitRatio: hit, CPUPerLine: cpu,
	})
}

// randRead emits scattered reads over r touching lines/page per pass.
func (b *builder) randRead(r guest.Region, lines, repeat int, hit, cpu float64) {
	b.event(access.Event{
		Region: r, LinesPerPage: lines, Repeat: repeat,
		Kind: access.Read, Pattern: access.Random, HitRatio: hit, CPUPerLine: cpu,
	})
}

// randWrite emits scattered writes over r.
func (b *builder) randWrite(r guest.Region, lines, repeat int, hit, cpu float64) {
	b.event(access.Event{
		Region: r, LinesPerPage: lines, Repeat: repeat,
		Kind: access.Write, Pattern: access.Random, HitRatio: hit, CPUPerLine: cpu,
	})
}
