package workload

import (
	"testing"

	"toss/internal/simtime"
)

// drain pulls a Source dry.
func drain(t *testing.T, s Source) []ArrivalSpec {
	t.Helper()
	var out []ArrivalSpec
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestStreamMatchesArrivals is the streaming-vs-materialized equivalence
// golden test the ISSUE asks for: for every process and a spread of seeds
// and shapes, NewStream must yield the exact sequence Arrivals materializes
// — same specs, same order, byte for byte.
func TestStreamMatchesArrivals(t *testing.T) {
	configs := []ArrivalsConfig{
		{Process: ProcPoisson, Horizon: 90 * simtime.Second, MeanIAT: 300 * simtime.Millisecond, Functions: []string{"json_load_dump", "pyaes"}},
		{Process: ProcDiurnal, Horizon: 120 * simtime.Second, MeanIAT: 250 * simtime.Millisecond,
			Functions: []string{"json_load_dump", "pyaes", "compress"}, Weights: []float64{5, 3, 1}},
		{Process: ProcFlash, Horizon: 120 * simtime.Second, MeanIAT: 400 * simtime.Millisecond,
			Functions: []string{"json_load_dump", "pyaes", "compress"}},
		{Process: ProcFlash, Horizon: 45 * simtime.Second, MeanIAT: 120 * simtime.Millisecond,
			Functions: []string{"pyaes", "compress"}, FlashFactor: 3, FlashHotShare: 0.95},
		{Process: ProcDiurnalFlash, Horizon: 180 * simtime.Second, MeanIAT: 200 * simtime.Millisecond,
			Functions: []string{"json_load_dump", "pyaes", "compress"}, Weights: []float64{1, 1, 8}},
	}
	for _, base := range configs {
		for _, seed := range []int64{1, 7, 42, 99991} {
			c := base
			c.Seed = seed
			name := c.Process.String()
			want, err := Arrivals(c)
			if err != nil {
				t.Fatalf("%s seed=%d: Arrivals: %v", name, seed, err)
			}
			st, err := NewStream(c)
			if err != nil {
				t.Fatalf("%s seed=%d: NewStream: %v", name, seed, err)
			}
			got := drain(t, st)
			if len(got) != len(want) {
				t.Fatalf("%s seed=%d: stream yielded %d arrivals, materialized %d", name, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s seed=%d: arrival %d differs:\n  stream:       %+v\n  materialized: %+v",
						name, seed, i, got[i], want[i])
				}
			}
			// Exhausted streams stay exhausted.
			if _, ok := st.Next(); ok {
				t.Fatalf("%s seed=%d: stream yielded past exhaustion", name, seed)
			}
		}
	}
}

// TestStreamRejectsInvalidConfig mirrors the Arrivals validation path.
func TestStreamRejectsInvalidConfig(t *testing.T) {
	if _, err := NewStream(ArrivalsConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestSliceSource checks the adapter yields the slice verbatim and then
// reports exhaustion.
func TestSliceSource(t *testing.T) {
	xs := []ArrivalSpec{
		{At: 1, Function: "a", Level: 0, Seed: 10},
		{At: 2, Function: "b", Level: 1, Seed: 20},
	}
	src := SliceSource(xs)
	got := drain(t, src)
	if len(got) != len(xs) {
		t.Fatalf("got %d specs, want %d", len(got), len(xs))
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("spec %d: got %+v, want %+v", i, got[i], xs[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted SliceSource yielded")
	}
	if empty := drain(t, SliceSource(nil)); len(empty) != 0 {
		t.Fatalf("nil slice yielded %d specs", len(empty))
	}
}
