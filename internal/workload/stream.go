package workload

import (
	"math"
	"math/rand"

	"toss/internal/simtime"
)

// This file is the streaming half of the arrival generator family. The
// materialized Arrivals() and the pull-based Stream share the same two
// generator state machines (baseGen, episodeGen), so "streaming equals
// materialized" is structural rather than a re-implementation that could
// drift: both paths consume the rng in the same order, and a golden test
// pins byte-identity of the sequences. Streaming exists for the day-scale
// runs (ext10): a 24h trace at ~8 arrivals/ms is >1M ArrivalSpecs, which
// should flow through the cluster core one at a time instead of living in a
// ~100MB slice first.

// Source yields a time-ordered arrival sequence one spec at a time. Next
// returns ok=false when the sequence is exhausted; implementations are not
// safe for concurrent use (the cluster core pulls from a single goroutine).
type Source interface {
	Next() (ArrivalSpec, bool)
}

// SliceSource adapts a materialized schedule to the Source interface, so
// callers holding a []ArrivalSpec (tests, the faasim CLI) can feed the same
// streaming entry points.
func SliceSource(xs []ArrivalSpec) Source { return &sliceSource{xs: xs} }

type sliceSource struct {
	xs []ArrivalSpec
	i  int
}

func (s *sliceSource) Next() (ArrivalSpec, bool) {
	if s.i >= len(s.xs) {
		return ArrivalSpec{}, false
	}
	a := s.xs[s.i]
	s.i++
	return a, true
}

// Stream is the streaming equivalent of Arrivals: it yields the exact same
// sequence (same config, same seed => byte-identical specs in the same
// order) without materializing it. Memory use is O(1) in the horizon.
//
// How the equivalence works: Arrivals draws the full baseline and then the
// episode overlay from one rng stream, concatenates, and stable-sorts on
// time. Both sub-sequences are individually time-sorted (inter-arrival
// draws are clamped to >= 1ns, and episodes provably never overlap — each
// ends before 0.625x the episode spacing past its anchor while the next
// begins after 0.75x), so the stable sort is exactly a two-way merge that
// prefers the baseline on ties (baseline entries precede episode entries in
// the concatenation). Stream performs that merge directly. The episode
// generator gets its own rng seeded identically and fast-forwarded past the
// baseline's draws in discard mode — O(horizon/IAT) setup time, O(1) memory
// — so the two lazy generators each see the same draw sub-stream they would
// have consumed in the single-threaded materialized pass.
type Stream struct {
	base     *baseGen
	eps      *episodeGen
	baseNext ArrivalSpec
	baseOK   bool
	epsNext  ArrivalSpec
	epsOK    bool
}

// NewStream validates the config and returns a streaming generator over it.
func NewStream(c ArrivalsConfig) (*Stream, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{}
	cc := c // one stable copy shared by both generators
	s.base = newBaseGen(&cc, rand.New(rand.NewSource(cc.Seed)))
	if cc.Process == ProcFlash || cc.Process == ProcDiurnalFlash {
		// Fast-forward a second identically-seeded rng past the baseline's
		// draws, discarding the specs; the episode generator then continues
		// from the exact rng state the materialized pass would hand it.
		erng := rand.New(rand.NewSource(cc.Seed))
		ff := newBaseGen(&cc, erng)
		for {
			if _, ok := ff.next(); !ok {
				break
			}
		}
		s.eps = newEpisodeGen(&cc, erng)
	}
	s.baseNext, s.baseOK = s.base.next()
	if s.eps != nil {
		s.epsNext, s.epsOK = s.eps.next()
	}
	return s, nil
}

// Next yields the next arrival in global time order.
func (s *Stream) Next() (ArrivalSpec, bool) {
	switch {
	case s.baseOK && (!s.epsOK || s.baseNext.At <= s.epsNext.At):
		a := s.baseNext
		s.baseNext, s.baseOK = s.base.next()
		return a, true
	case s.epsOK:
		a := s.epsNext
		s.epsNext, s.epsOK = s.eps.next()
		return a, true
	default:
		return ArrivalSpec{}, false
	}
}

// baseGen draws the baseline process: homogeneous Poisson, or the
// sinusoidally thinned diurnal variant for ProcDiurnal/ProcDiurnalFlash.
// Draw order per emitted arrival is pinned by the golden file: one expIAT,
// an optional thinning Float64, then the sample draws.
type baseGen struct {
	c       *ArrivalsConfig
	rng     *rand.Rand
	t       simtime.Duration
	meanIAT simtime.Duration
	day     float64
	diurnal bool
}

func newBaseGen(c *ArrivalsConfig, rng *rand.Rand) *baseGen {
	g := &baseGen{c: c, rng: rng, meanIAT: c.MeanIAT}
	if c.Process == ProcDiurnal || c.Process == ProcDiurnalFlash {
		// Base Poisson at 2x the average rate, thinned by (1+sin)/2 over a
		// day of Horizon/2 (every run sees full cycles).
		g.diurnal = true
		g.day = float64(c.Horizon) / 2
		g.meanIAT = c.MeanIAT / 2
	}
	return g
}

func (g *baseGen) next() (ArrivalSpec, bool) {
	for {
		g.t += expIAT(g.meanIAT, g.rng)
		if g.t >= g.c.Horizon {
			return ArrivalSpec{}, false
		}
		if g.diurnal {
			keep := (1 + math.Sin(2*math.Pi*float64(g.t)/g.day)) / 2
			if g.rng.Float64() >= keep {
				continue
			}
		}
		return g.c.sample(g.t, -1, g.rng), true
	}
}

// episodeGen draws the flash-crowd overlay: episodes tile the horizon at
// ~Horizon/6 spacing, each ~Horizon/24 long with jitter, and each picks its
// own hot function; inside an episode an extra Poisson process at
// (FlashFactor-1)x the base rate fires, FlashHotShare of it on the hot
// function.
type episodeGen struct {
	c        *ArrivalsConfig
	rng      *rand.Rand
	hotShare float64
	extraIAT simtime.Duration
	spacing  simtime.Duration
	length   simtime.Duration
	start    simtime.Duration // anchor of the next episode to open
	active   bool
	et       simtime.Duration // clock within the active episode
	end      simtime.Duration
	hot      int
}

func newEpisodeGen(c *ArrivalsConfig, rng *rand.Rand) *episodeGen {
	factor := c.FlashFactor
	if factor <= 0 {
		factor = 8
	}
	hotShare := c.FlashHotShare
	if hotShare == 0 {
		hotShare = 0.7
	}
	g := &episodeGen{
		c:        c,
		rng:      rng,
		hotShare: hotShare,
		extraIAT: simtime.Duration(float64(c.MeanIAT) / (factor - 1)),
		spacing:  c.Horizon / 6,
		length:   c.Horizon / 24,
	}
	g.start = g.spacing / 2
	return g
}

func (g *episodeGen) next() (ArrivalSpec, bool) {
	for {
		if !g.active {
			if g.start >= g.c.Horizon {
				return ArrivalSpec{}, false
			}
			begin := g.start + simtime.Duration(float64(g.spacing/4)*(g.rng.Float64()*2-1))
			end := begin + simtime.Duration(float64(g.length)*(0.5+g.rng.Float64()))
			if end > g.c.Horizon {
				end = g.c.Horizon
			}
			g.hot = g.rng.Intn(len(g.c.Functions))
			g.et = begin
			g.end = end
			g.start += g.spacing
			g.active = true
		}
		g.et += expIAT(g.extraIAT, g.rng)
		if g.et >= g.end {
			g.active = false
			continue
		}
		fn := g.hot
		if g.rng.Float64() >= g.hotShare {
			fn = -1 // fall back to the weighted sample
		}
		return g.c.sample(g.et, fn, g.rng), true
	}
}
