package workload

import (
	"testing"

	"toss/internal/guest"
	"toss/internal/mem"
	"toss/internal/microvm"
	"toss/internal/simtime"
)

func TestLevelString(t *testing.T) {
	want := map[Level]string{I: "I", II: "II", III: "III", IV: "IV"}
	for lv, s := range want {
		if lv.String() != s {
			t.Errorf("Level %d String = %q, want %q", int(lv), lv.String(), s)
		}
		if !lv.Valid() {
			t.Errorf("Level %v not valid", lv)
		}
	}
	if Level(9).Valid() {
		t.Error("Level(9) valid")
	}
	if Level(9).String() == "" {
		t.Error("invalid level String empty")
	}
}

func TestRegistryMatchesTableI(t *testing.T) {
	reg := Registry()
	if len(reg) != 10 {
		t.Fatalf("registry has %d functions, want 10", len(reg))
	}
	wantMem := map[string]int64{
		"float_operation":  128 << 20,
		"pyaes":            128 << 20,
		"json_load_dump":   128 << 20,
		"compress":         256 << 20,
		"linpack":          256 << 20,
		"matmul":           256 << 20,
		"image_processing": 256 << 20,
		"pagerank":         1024 << 20,
		"lr_serving":       1024 << 20,
		"lr_training":      1024 << 20,
	}
	for _, s := range reg {
		if s == nil {
			t.Fatal("nil spec in registry")
		}
		if got := wantMem[s.Name]; got != s.MemBytes {
			t.Errorf("%s: MemBytes = %d, want %d", s.Name, s.MemBytes, got)
		}
		if s.Description == "" || s.InputType == "" {
			t.Errorf("%s: missing Table I metadata", s.Name)
		}
		for i, lbl := range s.InputLabels {
			if lbl == "" {
				t.Errorf("%s: empty input label %d", s.Name, i)
			}
		}
	}
	if len(Names()) != 10 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("matmul"); !ok {
		t.Error("matmul not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown function found")
	}
}

func TestTraceRejectsInvalidLevel(t *testing.T) {
	if _, err := FloatOperation.Trace(Level(7), 1); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestTraceDeterministicPerSeed(t *testing.T) {
	for _, s := range Registry() {
		a, err := s.Trace(II, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Trace(II, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("%s: same seed, different event counts", s.Name)
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: same seed diverged at event %d", s.Name, i)
			}
		}
	}
}

func TestTraceSeedJitterChangesPlacement(t *testing.T) {
	for _, s := range Registry() {
		a, err := s.Trace(IV, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Trace(IV, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		same := len(a.Events) == len(b.Events)
		if same {
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical traces (no jitter)", s.Name)
		}
	}
}

func TestTracesFitGuestAndValidate(t *testing.T) {
	for _, s := range Registry() {
		layout, err := s.Layout()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, lv := range Levels {
			for seed := int64(1); seed <= 3; seed++ {
				tr, err := s.Trace(lv, seed)
				if err != nil {
					t.Fatalf("%s/%v: %v", s.Name, lv, err)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("%s/%v: %v", s.Name, lv, err)
				}
				for _, e := range tr.Events {
					if e.Region.End() > guest.PageID(layout.TotalPages) {
						t.Fatalf("%s/%v: event %v exceeds guest %d pages",
							s.Name, lv, e.Region, layout.TotalPages)
					}
				}
			}
		}
	}
}

func TestFootprintGrowsWithInput(t *testing.T) {
	// Table I: every function's memory footprint is monotone in the input
	// (strictly growing for the data-driven ones).
	for _, s := range Registry() {
		var prev int64 = -1
		for _, lv := range Levels {
			tr, err := s.Trace(lv, 7)
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name, lv, err)
			}
			fp := tr.FootprintPages()
			if fp < prev {
				t.Errorf("%s: footprint shrank from %d to %d pages at %v", s.Name, prev, fp, lv)
			}
			prev = fp
		}
	}
}

func TestFootprintScales(t *testing.T) {
	// Spot-check absolute footprints: compress IV streams ~82+41 MB, so
	// >= 120 MB touched; float_operation stays tiny (< 40 MB incl. runtime).
	tr, err := Compress.Trace(IV, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.FootprintPages() * guest.PageSize; got < 120<<20 {
		t.Errorf("compress IV footprint = %d MB, want >= 120 MB", got>>20)
	}
	tr, err = FloatOperation.Trace(IV, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.FootprintPages() * guest.PageSize; got > 40<<20 {
		t.Errorf("float_operation IV footprint = %d MB, want <= 40 MB", got>>20)
	}
	// pagerank IV must fill most of its 1 GiB guest.
	tr, err = PageRank.Trace(IV, 3)
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := PageRank.Layout()
	share := float64(tr.FootprintPages()) / float64(layout.TotalPages)
	if share < 0.70 || share > 0.98 {
		t.Errorf("pagerank IV touches %.0f%% of guest, want 70-98%%", share*100)
	}
}

// runOn executes a trace fully resident under a placement and returns exec time.
func runOn(t *testing.T, s *Spec, lv Level, seed int64, placement *mem.Placement) simtime.Duration {
	t.Helper()
	layout, err := s.Layout()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(lv, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := microvm.NewResident(microvm.DefaultConfig(), layout, placement, 1)
	res, err := m.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res.Exec
}

func TestFullSlowSlowdownShapes(t *testing.T) {
	// Fig. 2's qualitative shape: compute-bound functions suffer little
	// when fully offloaded; pagerank suffers the most.
	slowdown := func(s *Spec) float64 {
		layout, _ := s.Layout()
		fast := runOn(t, s, IV, 5, mem.AllFast())
		slow := runOn(t, s, IV, 5, mem.AllSlow(layout.TotalPages))
		return float64(slow) / float64(fast)
	}
	cheap := slowdown(Compress)
	if cheap > 1.15 {
		t.Errorf("compress full-slow slowdown = %.2f, want <= 1.15", cheap)
	}
	pr := slowdown(PageRank)
	if pr < 1.8 {
		t.Errorf("pagerank full-slow slowdown = %.2f, want >= 1.8", pr)
	}
	if pr <= cheap {
		t.Error("pagerank not more tier-sensitive than compress")
	}
}

func TestExecutionTimesPlausible(t *testing.T) {
	// All functions at input IV should execute within the serverless window
	// the paper cites (most functions < 10 s, none < 1 ms at input IV).
	for _, s := range Registry() {
		exec := runOn(t, s, IV, 9, mem.AllFast())
		if exec < simtime.Millisecond {
			t.Errorf("%s IV exec = %v, implausibly fast", s.Name, exec)
		}
		if exec > 30*simtime.Second {
			t.Errorf("%s IV exec = %v, implausibly slow", s.Name, exec)
		}
	}
}
