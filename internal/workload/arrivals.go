package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"toss/internal/simtime"
)

// This file is the cluster-scale arrival-process generator family. Unlike
// internal/trace, which shapes per-function traffic for a single host (each
// FunctionMix is its own process), these generators model the *aggregate*
// request stream a fleet front-end sees: one process for the whole cluster,
// with functions sampled per request. The three shapes mirror what
// production serverless front-ends route — steady Poisson, diurnal day
// curves, and flash crowds where a single function's traffic multiplies for
// a short episode (the cold-start-heavy case snapshot-affinity routing is
// built for).

// Process classifies a cluster-level aggregate arrival process.
type Process int

const (
	// ProcPoisson is a homogeneous Poisson process at the aggregate rate.
	ProcPoisson Process = iota
	// ProcDiurnal modulates a Poisson process with a sinusoidal day curve
	// whose period is half the horizon (every run sees full cycles).
	ProcDiurnal
	// ProcFlash overlays flash-crowd episodes on a Poisson baseline: for
	// short windows the aggregate rate multiplies and the extra traffic
	// concentrates on one hot function, so a fleet suddenly needs many
	// copies of the same snapshot at once.
	ProcFlash
	// ProcDiurnalFlash overlays the same flash-crowd episodes on a diurnal
	// baseline — the day-scale fleet shape (ext10): a day curve with
	// periodic crowd spikes riding on it.
	ProcDiurnalFlash
)

// String names the process.
func (p Process) String() string {
	switch p {
	case ProcPoisson:
		return "poisson"
	case ProcDiurnal:
		return "diurnal"
	case ProcFlash:
		return "flash"
	case ProcDiurnalFlash:
		return "diurnalflash"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// Processes returns every generator in canonical order.
func Processes() []Process {
	return []Process{ProcPoisson, ProcDiurnal, ProcFlash, ProcDiurnalFlash}
}

// ParseProcess maps a CLI name to a Process.
func ParseProcess(s string) (Process, error) {
	for _, p := range Processes() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q (want poisson, diurnal, flash, or diurnalflash)", s)
}

// ArrivalSpec is one cluster-level invocation request: which function, which
// input level, and the invocation seed, at a point in virtual time.
type ArrivalSpec struct {
	At       simtime.Duration
	Function string
	Level    Level
	Seed     int64
}

// ArrivalsConfig describes one generated schedule.
type ArrivalsConfig struct {
	// Process selects the generator.
	Process Process
	// Horizon is the schedule duration in virtual time.
	Horizon simtime.Duration
	// MeanIAT is the aggregate mean inter-arrival time across all
	// functions (1/MeanIAT is the offered cluster-wide request rate).
	MeanIAT simtime.Duration
	// Functions lists the candidate functions; each arrival samples one.
	Functions []string
	// Weights optionally biases the function sample (uniform when empty;
	// must match len(Functions) otherwise).
	Weights []float64
	// Seed drives all randomness. Same config + same seed => byte-identical
	// schedule (a golden-file test pins this).
	Seed int64
	// FlashFactor multiplies the aggregate rate inside a flash episode
	// (ProcFlash only; default 8).
	FlashFactor float64
	// FlashHotShare is the fraction of episode traffic concentrated on the
	// episode's hot function (ProcFlash only; default 0.7).
	FlashHotShare float64
}

// Validate checks the configuration.
func (c ArrivalsConfig) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("workload: non-positive arrival horizon %v", c.Horizon)
	}
	if c.MeanIAT <= 0 {
		return fmt.Errorf("workload: non-positive mean IAT %v", c.MeanIAT)
	}
	if len(c.Functions) == 0 {
		return fmt.Errorf("workload: no functions in arrival config")
	}
	for i, fn := range c.Functions {
		if _, ok := ByName(fn); !ok {
			return fmt.Errorf("workload: arrivals: unknown function %q (index %d)", fn, i)
		}
	}
	if len(c.Weights) > 0 && len(c.Weights) != len(c.Functions) {
		return fmt.Errorf("workload: arrivals: %d weights for %d functions", len(c.Weights), len(c.Functions))
	}
	for i, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("workload: arrivals: negative weight at index %d", i)
		}
	}
	if c.FlashFactor < 0 || c.FlashHotShare < 0 || c.FlashHotShare > 1 {
		return fmt.Errorf("workload: arrivals: invalid flash parameters (factor %v, hot share %v)", c.FlashFactor, c.FlashHotShare)
	}
	return nil
}

// Arrivals generates the time-ordered schedule, materialized as a slice.
// Generation is single-threaded and consumes one seeded rng stream in a
// fixed order, so the output is byte-identical across runs and across
// whatever worker pool the caller happens to run inside. For day-scale
// schedules that should never live in memory at once, use NewStream — it
// yields this exact sequence (a golden equivalence test pins that), one
// arrival at a time.
func Arrivals(c ArrivalsConfig) ([]ArrivalSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// The flash-family processes draw the whole baseline before the
	// episodes on the same rng stream (the seed contract the golden file
	// pins), so the materialized path runs the two generators back to back.
	rng := rand.New(rand.NewSource(c.Seed))
	var out []ArrivalSpec
	base := newBaseGen(&c, rng)
	for {
		a, ok := base.next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	if c.Process == ProcFlash || c.Process == ProcDiurnalFlash {
		eps := newEpisodeGen(&c, rng)
		for {
			a, ok := eps.next()
			if !ok {
				break
			}
			out = append(out, a)
		}
	}
	// Stable sort on time only: equal-time arrivals keep generation order,
	// which is itself deterministic.
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// sample draws one arrival at time t. fnIdx >= 0 pins the function;
// otherwise it is sampled from the weights (uniform when empty).
func (c ArrivalsConfig) sample(t simtime.Duration, fnIdx int, rng *rand.Rand) ArrivalSpec {
	if fnIdx < 0 {
		fnIdx = c.pickFunction(rng)
	}
	return ArrivalSpec{
		At:       t,
		Function: c.Functions[fnIdx],
		Level:    Level(rng.Intn(len(Levels))),
		Seed:     rng.Int63n(1 << 40),
	}
}

// pickFunction samples a function index from the weights.
func (c ArrivalsConfig) pickFunction(rng *rand.Rand) int {
	if len(c.Weights) == 0 {
		return rng.Intn(len(c.Functions))
	}
	var total float64
	for _, w := range c.Weights {
		total += w
	}
	if total == 0 {
		return rng.Intn(len(c.Functions))
	}
	x := rng.Float64() * total
	for i, w := range c.Weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(c.Functions) - 1
}

// expIAT draws an exponential inter-arrival time with the given mean,
// clamped to at least one nanosecond so processes always progress.
func expIAT(mean simtime.Duration, rng *rand.Rand) simtime.Duration {
	d := simtime.Duration(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
