package workload

import (
	"testing"
)

func TestTraceCacheHitsSameCell(t *testing.T) {
	spec := ByNameMust("compress")
	a, err := spec.Trace(II, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Trace(II, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (function, level, seed) cell returned distinct trace pointers; cache missed")
	}
	c, err := spec.Trace(II, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds share a trace pointer")
	}
}

func TestTraceCacheBounded(t *testing.T) {
	spec := ByNameMust("float_operation")
	for seed := int64(1); seed <= int64(traceCacheLimit)+50; seed++ {
		if _, err := spec.Trace(I, seed); err != nil {
			t.Fatal(err)
		}
	}
	if n := traceCache.len(); n > traceCacheLimit {
		t.Errorf("trace cache holds %d entries, limit %d", n, traceCacheLimit)
	}
}

func TestLayoutMemoized(t *testing.T) {
	spec := ByNameMust("matmul")
	l1, err := spec.Layout()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := spec.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("layout not stable: %+v vs %+v", l1, l2)
	}
}
