package migrate

import (
	"fmt"
	"strings"
)

// tierGlyphs maps hierarchy levels to timeline glyphs, hottest tier first.
// Levels beyond the table reuse the last glyph.
var tierGlyphs = []byte{'#', '=', '-', '.', ' '}

func glyphFor(level int) byte {
	if level < 0 {
		level = 0
	}
	if level >= len(tierGlyphs) {
		level = len(tierGlyphs) - 1
	}
	return tierGlyphs[level]
}

// Timeline records per-epoch snapshots of the engine's extent→tier map for
// ASCII rendering (`faasim -migrate-demo`): one captured row per epoch, one
// column per extent, glyph = tier.
type Timeline struct {
	levels int
	names  []string
	rows   [][]int
	labels []string
}

// NewTimeline builds a timeline for an engine's hierarchy.
func NewTimeline(e *Engine) *Timeline {
	names := make([]string, e.cfg.Hierarchy.Levels())
	for i, t := range e.cfg.Hierarchy.Tiers {
		names[i] = t.Name
	}
	return &Timeline{levels: len(names), names: names}
}

// Capture appends the engine's current extent levels as one timeline row.
func (t *Timeline) Capture(e *Engine, label string) {
	t.rows = append(t.rows, e.Levels())
	t.labels = append(t.labels, label)
}

// Render draws the captured rows, downsampling extents to at most maxCols
// columns (each column shows the hottest tier present in its bucket, so
// promotions stay visible after downsampling).
func (t *Timeline) Render(maxCols int) string {
	if len(t.rows) == 0 {
		return "(no epochs captured)\n"
	}
	if maxCols < 1 {
		maxCols = 64
	}
	nExt := len(t.rows[0])
	cols := nExt
	if cols > maxCols {
		cols = maxCols
	}
	labelW := 0
	for _, l := range t.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  extents 0..%d (1 col ≈ %.1f extents), tiers:", labelW, "", nExt-1,
		float64(nExt)/float64(cols))
	for i, name := range t.names {
		fmt.Fprintf(&b, " %c=%s", glyphFor(i), name)
	}
	b.WriteByte('\n')
	for r, row := range t.rows {
		fmt.Fprintf(&b, "%*s  ", labelW, t.labels[r])
		for c := 0; c < cols; c++ {
			lo := c * nExt / cols
			hi := (c + 1) * nExt / cols
			if hi <= lo {
				hi = lo + 1
			}
			best := row[lo]
			for i := lo + 1; i < hi; i++ {
				if row[i] < best {
					best = row[i]
				}
			}
			b.WriteByte(glyphFor(best))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary formats the engine's stats and per-tier occupancy in one line per
// tier plus a totals line.
func Summary(e *Engine) string {
	var b strings.Builder
	occ := e.Occupancy()
	for i, t := range e.cfg.Hierarchy.Tiers {
		capStr := "unbounded"
		if !e.cfg.Hierarchy.Unbounded(i) {
			capStr = fmt.Sprintf("%d pages cap", e.cfg.Hierarchy.Capacity(i))
		}
		fmt.Fprintf(&b, "  %-8s %8d pages resident (%s)\n", t.Name, occ[i], capStr)
	}
	s := e.Stats()
	fmt.Fprintf(&b, "  %d epochs: %d promotions, %d demotions, %d evictions, %d prefetches, %.1f MiB moved, daemon busy %v\n",
		s.Epochs, s.Promotions, s.Demotions, s.Evictions, s.Prefetches,
		float64(s.MovedPages)*4096/(1<<20), s.BusyTime)
	return b.String()
}
