// Package migrate is the background migration engine of the N-tier snapshot
// hierarchy (TIERS.md): a virtual-time daemon that consumes per-extent access
// heat (DAMON/wstrack-derived), promotes hot snapshot regions up the
// hierarchy, demotes cold ones down (Squeezy-style reclamation on the cold
// edge), and prefetches the likely-next neighbors of every promotion.
//
// The engine tracks heat at fixed extent granularity (Config.ExtentPages,
// default 64 pages = 256 KiB) as an exponentially weighted moving average
// folded once per epoch. Each Tick packs extents into tiers greedily by heat
// under an incumbent-advantage hysteresis (an extent already resident at a
// tier must be out-heated by Config.PromoteMargin before a challenger
// displaces it), then executes the resulting moves — demotions first, so
// reclamation frees capacity before promotions need it — under a bandwidth
// budget of one epoch of migration time per epoch. Every move costs virtual
// time (mem.Hierarchy.MoveCost) and marks its extent busy until the move
// completes; executions overlapping a busy extent wait (WaitFor), which is
// exactly the time ext11 charges to the xray migrate.* segments.
//
// Determinism: the engine is a pure function of (config, seed, the Touch and
// Tick sequence). Heat ties in the packing order are broken by a splitmix64
// hash of (seed, extent) — stable across epochs so equal-heat extents do not
// churn — and every iteration order is explicit, so the migration log is
// byte-identical for a given seed at any caller parallelism (pinned by the
// serial-vs-parallel log-checksum tests).
package migrate

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"toss/internal/guest"
	"toss/internal/mem"
	"toss/internal/simtime"
	"toss/internal/telemetry"
)

// Policy selects what the engine is allowed to move.
type Policy int

const (
	// PolicyStatic never migrates: the snapshot-time placement is final
	// (TOSS's original behaviour, lifted onto the hierarchy).
	PolicyStatic Policy = iota
	// PolicyPromoteOnly promotes hot extents (evicting coldest incumbents
	// only when the target tier is full) but never reclaims cold extents
	// in the background.
	PolicyPromoteOnly
	// PolicyFull adds background demotion: cold extents drain down the
	// hierarchy every epoch, so capacity is free before promotions need it.
	PolicyFull
	// PolicyOracle re-packs the hierarchy every epoch with no hysteresis,
	// no bandwidth cost, and no busy time — the unreachable upper bound.
	PolicyOracle
)

// String names the policy the way ext11's table does.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyPromoteOnly:
		return "promote-only"
	case PolicyFull:
		return "full-migration"
	case PolicyOracle:
		return "oracle"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies returns all policies in sweep order.
func Policies() []Policy {
	return []Policy{PolicyStatic, PolicyPromoteOnly, PolicyFull, PolicyOracle}
}

// PolicyByName resolves a policy from its String form.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Config tunes the engine. DefaultConfig documents each default.
type Config struct {
	// Hierarchy is the tier model: capacities, costs, bandwidths.
	Hierarchy mem.Hierarchy
	// Policy selects the migration behaviour.
	Policy Policy
	// ExtentPages is the heat-tracking and migration granularity.
	ExtentPages int64
	// Epoch is the daemon's virtual-time cadence: Tick is called once per
	// epoch, and each epoch may schedule at most one epoch's worth of
	// migration bandwidth.
	Epoch simtime.Duration
	// Decay is the per-epoch EWMA retention of old heat (0..1): heat =
	// Decay*heat + thisEpoch. Lower values react faster to drift.
	Decay float64
	// PromoteMargin is the incumbent-advantage hysteresis: a challenger
	// must be at least this factor hotter than a tier's incumbent to
	// displace it. 1 disables hysteresis.
	PromoteMargin float64
	// MinResidencyEpochs is the per-extent cooldown: an extent moved in
	// epoch E does not move again before E+MinResidencyEpochs (forced
	// evictions are exempt — a full tier must always be reclaimable).
	MinResidencyEpochs int
	// PrefetchExtents is how many address-space successors each promoted
	// extent pulls along (prefetch-on-promote). 0 disables.
	PrefetchExtents int
	// Seed feeds the deterministic tie-break hash.
	Seed int64
}

// DefaultConfig returns the engine defaults used by ext11 and the faasim
// migration demo, over the given hierarchy.
func DefaultConfig(h mem.Hierarchy) Config {
	return Config{
		Hierarchy:          h,
		Policy:             PolicyFull,
		ExtentPages:        64, // 256 KiB
		Epoch:              1 * simtime.Second,
		Decay:              0.5,
		PromoteMargin:      1.5,
		MinResidencyEpochs: 2,
		PrefetchExtents:    1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if c.ExtentPages < 1 {
		return fmt.Errorf("migrate: ExtentPages %d < 1", c.ExtentPages)
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("migrate: non-positive Epoch")
	}
	if c.Decay < 0 || c.Decay >= 1 {
		return fmt.Errorf("migrate: Decay %v out of [0,1)", c.Decay)
	}
	if c.PromoteMargin < 1 {
		return fmt.Errorf("migrate: PromoteMargin %v < 1", c.PromoteMargin)
	}
	if c.MinResidencyEpochs < 0 {
		return fmt.Errorf("migrate: negative MinResidencyEpochs")
	}
	if c.PrefetchExtents < 0 {
		return fmt.Errorf("migrate: negative PrefetchExtents")
	}
	return nil
}

// Reason classifies one migration event.
type Reason uint8

const (
	// ReasonPromote moved a hot extent up the hierarchy.
	ReasonPromote Reason = iota
	// ReasonDemote drained a cold extent down (background reclamation).
	ReasonDemote
	// ReasonEvict demoted a tier's coldest incumbent to make room for a
	// promotion into a full tier.
	ReasonEvict
	// ReasonPrefetch promoted an address-space successor of a promoted
	// extent (prefetch-on-promote).
	ReasonPrefetch
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonPromote:
		return "promote"
	case ReasonDemote:
		return "demote"
	case ReasonEvict:
		return "evict"
	case ReasonPrefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// Event is one executed migration, in schedule order.
type Event struct {
	// At / Done bound the move on the daemon's virtual-time schedule.
	At, Done simtime.Duration
	// Extent is the moved extent's index; Region its guest pages.
	Extent int
	Region guest.Region
	// From / To are hierarchy levels.
	From, To int
	// Reason classifies the move.
	Reason Reason
	// Heat is the extent's EWMA heat when the move was scheduled.
	Heat float64
}

// Stats summarizes an engine's activity.
type Stats struct {
	Promotions int64
	Demotions  int64
	Evictions  int64
	Prefetches int64
	MovedPages int64
	// BusyTime is the total virtual time the migration daemon spent moving.
	BusyTime simtime.Duration
	// Epochs counts Tick calls.
	Epochs int64
}

// Moves returns the total executed migrations.
func (s Stats) Moves() int64 { return s.Promotions + s.Demotions + s.Evictions + s.Prefetches }

// Minus returns the per-field difference s - prev: the activity of one
// epoch when s and prev are consecutive Stats() snapshots. insight's
// per-epoch migration series feed on it.
func (s Stats) Minus(prev Stats) Stats {
	return Stats{
		Promotions: s.Promotions - prev.Promotions,
		Demotions:  s.Demotions - prev.Demotions,
		Evictions:  s.Evictions - prev.Evictions,
		Prefetches: s.Prefetches - prev.Prefetches,
		MovedPages: s.MovedPages - prev.MovedPages,
		BusyTime:   s.BusyTime - prev.BusyTime,
		Epochs:     s.Epochs - prev.Epochs,
	}
}

// Engine is one function's migration daemon. It is not safe for concurrent
// use; run one engine per goroutine (the determinism tests fan engines out
// over internal/par and pin byte-identical logs).
type Engine struct {
	cfg        Config
	totalPages int64
	nExt       int

	heat      []float64 // EWMA per extent
	pending   []float64 // heat accumulated since the last Tick
	level     []uint8   // current hierarchy level per extent
	movedAt   []int32   // epoch of the extent's last move (hysteresis)
	readyAt   []simtime.Duration
	occupancy []int64 // pages per level

	epoch     int32
	busyUntil simtime.Duration
	log       []Event
	stats     Stats

	// Metrics, when set, receives migrate.* counters. Nil-safe.
	Metrics *telemetry.Metrics

	// scratch buffers reused across Ticks.
	order   []int
	desired []uint8
}

// New builds an engine over a guest of totalPages pages with every extent at
// the hierarchy's bottom tier (seed real placements with SetLevel or
// LoadPlacement).
func New(cfg Config, totalPages int64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if totalPages < 1 {
		return nil, fmt.Errorf("migrate: non-positive guest size %d", totalPages)
	}
	n := int((totalPages + cfg.ExtentPages - 1) / cfg.ExtentPages)
	e := &Engine{
		cfg:        cfg,
		totalPages: totalPages,
		nExt:       n,
		heat:       make([]float64, n),
		pending:    make([]float64, n),
		level:      make([]uint8, n),
		movedAt:    make([]int32, n),
		readyAt:    make([]simtime.Duration, n),
		occupancy:  make([]int64, cfg.Hierarchy.Levels()),
	}
	bottom := uint8(cfg.Hierarchy.Bottom())
	for i := range e.level {
		e.level[i] = bottom
		e.movedAt[i] = -1 << 30
	}
	e.occupancy[bottom] = totalPages
	return e, nil
}

// Extents returns the number of tracked extents.
func (e *Engine) Extents() int { return e.nExt }

// ExtentOf returns the extent index covering page p.
func (e *Engine) ExtentOf(p guest.PageID) int { return int(int64(p) / e.cfg.ExtentPages) }

// ExtentRegion returns the guest pages of extent i (the last extent may be
// short).
func (e *Engine) ExtentRegion(i int) guest.Region {
	start := int64(i) * e.cfg.ExtentPages
	pages := e.cfg.ExtentPages
	if start+pages > e.totalPages {
		pages = e.totalPages - start
	}
	return guest.Region{Start: guest.PageID(start), Pages: pages}
}

// LevelOfExtent returns extent i's current hierarchy level.
func (e *Engine) LevelOfExtent(i int) int { return int(e.level[i]) }

// LevelOf returns the level currently holding page p.
func (e *Engine) LevelOf(p guest.PageID) int { return int(e.level[e.ExtentOf(p)]) }

// Levels returns a copy of the per-extent level vector — one row of the
// migration timeline (RenderTimeline).
func (e *Engine) Levels() []int {
	out := make([]int, e.nExt)
	for i, l := range e.level {
		out[i] = int(l)
	}
	return out
}

// Heat returns extent i's current EWMA heat.
func (e *Engine) Heat(i int) float64 { return e.heat[i] }

// Occupancy returns the pages resident per level.
func (e *Engine) Occupancy() []int64 { return append([]int64(nil), e.occupancy...) }

// SetLevel seeds the placement: every extent overlapping r moves to level
// instantly, free of charge (snapshot-restore seeding, not migration).
func (e *Engine) SetLevel(r guest.Region, level int) {
	if level < 0 || level >= e.cfg.Hierarchy.Levels() {
		panic(fmt.Sprintf("migrate: level %d out of range", level))
	}
	lo, hi := e.clampExtents(r)
	for i := lo; i < hi; i++ {
		e.moveOccupancy(i, level)
		e.level[i] = uint8(level)
	}
}

// LoadPlacement seeds the placement from a MultiPlacement (each extent takes
// the level of its first page — extents are the engine's granularity).
func (e *Engine) LoadPlacement(mp *mem.MultiPlacement) {
	for i := 0; i < e.nExt; i++ {
		e.moveOccupancy(i, mp.LevelOf(e.ExtentRegion(i).Start))
		e.level[i] = uint8(mp.LevelOf(e.ExtentRegion(i).Start))
	}
}

// Placement exports the current per-extent levels as a MultiPlacement with
// the hierarchy's bottom tier as default level.
func (e *Engine) Placement() *mem.MultiPlacement {
	mp, err := mem.NewMultiPlacement(e.cfg.Hierarchy.Levels(), e.cfg.Hierarchy.Bottom(), e.totalPages)
	if err != nil {
		panic(err) // engine invariants guarantee valid arguments
	}
	for i := 0; i < e.nExt; i++ {
		if lv := int(e.level[i]); lv != mp.DefaultLevel() {
			mp.Set(e.ExtentRegion(i), lv)
		}
	}
	return mp
}

// moveOccupancy re-books extent i's pages from its current level to level.
func (e *Engine) moveOccupancy(i, level int) {
	pages := e.ExtentRegion(i).Pages
	e.occupancy[e.level[i]] -= pages
	e.occupancy[level] += pages
}

// clampExtents returns the half-open extent range overlapping r.
func (e *Engine) clampExtents(r guest.Region) (int, int) {
	if r.Empty() {
		return 0, 0
	}
	lo := int(int64(r.Start) / e.cfg.ExtentPages)
	hi := int((int64(r.End()) + e.cfg.ExtentPages - 1) / e.cfg.ExtentPages)
	if lo < 0 {
		lo = 0
	}
	if hi > e.nExt {
		hi = e.nExt
	}
	return lo, hi
}

// Touch feeds access heat: perPage line touches per page over region r,
// accumulated into the current epoch (folded into the EWMA at the next
// Tick). Partial extent overlap is weighted by the overlap fraction.
func (e *Engine) Touch(r guest.Region, perPage float64) {
	lo, hi := e.clampExtents(r)
	for i := lo; i < hi; i++ {
		ext := e.ExtentRegion(i)
		ov := overlapPages(ext, r)
		if ov > 0 {
			e.pending[i] += perPage * float64(ov) / float64(ext.Pages)
		}
	}
}

// TouchExtent adds heat directly to one extent.
func (e *Engine) TouchExtent(i int, h float64) { e.pending[i] += h }

func overlapPages(a, b guest.Region) int64 {
	lo := a.Start
	if b.Start > lo {
		lo = b.Start
	}
	hi := a.End()
	if b.End() < hi {
		hi = b.End()
	}
	if hi <= lo {
		return 0
	}
	return int64(hi - lo)
}

// WaitFor returns how long an execution arriving at `now` must wait for
// in-flight migrations covering region r — zero when every overlapped
// extent is settled. This is the stall ext11 charges to the xray
// migrate.promote / migrate.demote segments.
func (e *Engine) WaitFor(r guest.Region, now simtime.Duration) simtime.Duration {
	var wait simtime.Duration
	lo, hi := e.clampExtents(r)
	for i := lo; i < hi; i++ {
		if d := e.readyAt[i] - now; d > wait {
			wait = d
		}
	}
	return wait
}

// jitter is the deterministic tie-break: a splitmix64 of (seed, extent),
// stable across epochs so equal-heat extents do not churn between tiers.
func (e *Engine) jitter(extent int) uint64 {
	x := uint64(e.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(extent)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// less orders extents by (heat desc, jitter, index) given a heat vector.
func (e *Engine) hotterFirst(order []int, heatOf func(int) float64) {
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		hi, hj := heatOf(i), heatOf(j)
		if hi != hj {
			return hi > hj
		}
		ji, jj := e.jitter(i), e.jitter(j)
		if ji != jj {
			return ji < jj
		}
		return i < j
	})
}

// Tick ends the current epoch at virtual time `now`: folds pending heat into
// the EWMA, computes the desired packing, and executes migrations under the
// policy and this epoch's bandwidth budget. It returns the events scheduled
// by this tick (also appended to Log).
func (e *Engine) Tick(now simtime.Duration) []Event {
	e.epoch++
	e.stats.Epochs++
	for i := range e.heat {
		e.heat[i] = e.cfg.Decay*e.heat[i] + e.pending[i]
		e.pending[i] = 0
	}
	if e.cfg.Policy == PolicyStatic {
		return nil
	}

	oracle := e.cfg.Policy == PolicyOracle
	desired := e.packDesired(oracle)

	logStart := len(e.log)
	// The daemon's schedule cursor: migrations serialize on the daemon and
	// this epoch may schedule at most one epoch of moving time.
	cursor := e.busyUntil
	if cursor < now {
		cursor = now
	}
	deadline := now + e.cfg.Epoch
	budgetLeft := func() bool { return oracle || cursor < deadline }

	exec := func(i, to int, reason Reason) {
		from := int(e.level[i])
		if from == to {
			return
		}
		region := e.ExtentRegion(i)
		cost := e.cfg.Hierarchy.MoveCost(from, to, region.Pages)
		at, done := cursor, cursor
		if !oracle {
			done = cursor + cost
			cursor = done
			e.readyAt[i] = done
			e.stats.BusyTime += cost
		}
		e.moveOccupancy(i, to)
		e.level[i] = uint8(to)
		e.movedAt[i] = e.epoch
		e.stats.MovedPages += region.Pages
		switch reason {
		case ReasonPromote:
			e.stats.Promotions++
		case ReasonDemote:
			e.stats.Demotions++
		case ReasonEvict:
			e.stats.Evictions++
		case ReasonPrefetch:
			e.stats.Prefetches++
		}
		e.log = append(e.log, Event{
			At: at, Done: done, Extent: i, Region: region,
			From: from, To: to, Reason: reason, Heat: e.heat[i],
		})
	}

	// roomAt finds the highest level in [want, bottom] with room for pages,
	// starting at the wanted level and cascading down — "demotion under a
	// full lower tier" lands one level deeper (the bottom is unbounded).
	roomAt := func(want int, pages int64) int {
		for l := want; l < e.cfg.Hierarchy.Levels(); l++ {
			if e.occupancy[l]+pages <= e.cfg.Hierarchy.Capacity(l) {
				return l
			}
		}
		return e.cfg.Hierarchy.Bottom()
	}

	cooled := func(i int) bool {
		return oracle || int(e.epoch-e.movedAt[i]) >= e.cfg.MinResidencyEpochs
	}

	// Background demotion (full-migration and oracle): drain cold extents
	// down, coldest first, so reclamation frees capacity before promotions
	// need it.
	if e.cfg.Policy == PolicyFull || oracle {
		e.order = e.order[:0]
		for i := 0; i < e.nExt; i++ {
			if int(desired[i]) > int(e.level[i]) && cooled(i) {
				e.order = append(e.order, i)
			}
		}
		e.hotterFirst(e.order, func(i int) float64 { return -e.heat[i] }) // coldest first
		for _, i := range e.order {
			if !budgetLeft() {
				break
			}
			exec(i, roomAt(int(desired[i]), e.ExtentRegion(i).Pages), ReasonDemote)
		}
	}

	// Promotions, hottest first. A full target tier evicts its coldest
	// incumbent one level down (cascading past full tiers) to make room.
	e.order = e.order[:0]
	for i := 0; i < e.nExt; i++ {
		if int(desired[i]) < int(e.level[i]) && cooled(i) {
			e.order = append(e.order, i)
		}
	}
	e.hotterFirst(e.order, func(i int) float64 { return e.heat[i] })
	promoted := e.order[:0:0]
	for _, i := range e.order {
		if !budgetLeft() {
			break
		}
		target := int(desired[i])
		if !e.makeRoom(target, e.ExtentRegion(i).Pages, exec, roomAt, budgetLeft) {
			continue
		}
		exec(i, target, ReasonPromote)
		promoted = append(promoted, i)
	}

	// Prefetch-on-promote: pull each promoted extent's address-space
	// successors to the same level — sequential access means they are the
	// likely-next pages.
	if e.cfg.PrefetchExtents > 0 {
		for _, i := range promoted {
			target := int(e.level[i])
			for k := 1; k <= e.cfg.PrefetchExtents; k++ {
				j := i + k
				if j >= e.nExt || !budgetLeft() {
					break
				}
				if int(e.level[j]) <= target || e.movedAt[j] == e.epoch {
					continue
				}
				if !e.makeRoom(target, e.ExtentRegion(j).Pages, exec, roomAt, budgetLeft) {
					break
				}
				exec(j, target, ReasonPrefetch)
			}
		}
	}

	if !oracle && cursor > e.busyUntil {
		e.busyUntil = cursor
	}
	events := e.log[logStart:]
	if m := e.Metrics; m != nil && len(events) > 0 {
		var moved int64
		for _, ev := range events {
			moved += ev.Region.Pages * guest.PageSize
			switch ev.Reason {
			case ReasonDemote, ReasonEvict:
				m.Counter(telemetry.MetricMigrateDemotions).Add(1)
			case ReasonPrefetch:
				m.Counter(telemetry.MetricMigratePrefetches).Add(1)
			default:
				m.Counter(telemetry.MetricMigratePromotions).Add(1)
			}
		}
		m.Counter(telemetry.MetricMigrateMovedBytes).Add(moved)
	}
	return events
}

// makeRoom evicts coldest incumbents of `target` (one level down, cascading
// past full tiers) until `pages` fit, and reports whether it succeeded.
func (e *Engine) makeRoom(target int, pages int64,
	exec func(i, to int, reason Reason), roomAt func(int, int64) int, budgetLeft func() bool) bool {
	if e.cfg.Policy == PolicyStatic {
		return false
	}
	for e.occupancy[target]+pages > e.cfg.Hierarchy.Capacity(target) {
		if !budgetLeft() {
			return false
		}
		victim := -1
		for i := 0; i < e.nExt; i++ {
			if int(e.level[i]) != target || e.movedAt[i] == e.epoch {
				continue
			}
			if victim < 0 || e.heat[i] < e.heat[victim] ||
				(e.heat[i] == e.heat[victim] && e.jitter(i) < e.jitter(victim)) {
				victim = i
			}
		}
		if victim < 0 {
			return false // nothing evictable (everything moved this epoch)
		}
		exec(victim, roomAt(target+1, e.ExtentRegion(victim).Pages), ReasonEvict)
	}
	return true
}

// packDesired greedily assigns extents to tiers by heat under the capacity
// vector. Unless `oracle`, incumbents of a tier compete with their heat
// multiplied by PromoteMargin — the hysteresis that keeps near-ties from
// churning.
func (e *Engine) packDesired(oracle bool) []uint8 {
	if cap(e.desired) < e.nExt {
		e.desired = make([]uint8, e.nExt)
	}
	desired := e.desired[:e.nExt]
	bottom := uint8(e.cfg.Hierarchy.Bottom())
	for i := range desired {
		desired[i] = bottom
	}
	assigned := make([]bool, e.nExt)
	order := make([]int, e.nExt)
	for l := 0; l < e.cfg.Hierarchy.Levels()-1; l++ {
		order = order[:0]
		for i := 0; i < e.nExt; i++ {
			if !assigned[i] {
				order = append(order, i)
			}
		}
		score := func(i int) float64 {
			if !oracle && int(e.level[i]) == l {
				return e.heat[i] * e.cfg.PromoteMargin
			}
			return e.heat[i]
		}
		e.hotterFirst(order, score)
		capLeft := e.cfg.Hierarchy.Capacity(l)
		for _, i := range order {
			pages := e.ExtentRegion(i).Pages
			if pages > capLeft {
				break
			}
			// Cold extents never deserve a bounded tier: zero heat stays
			// at the bottom so empty capacity is not filled with garbage.
			if e.heat[i] <= 0 {
				break
			}
			desired[i] = uint8(l)
			assigned[i] = true
			capLeft -= pages
		}
	}
	return desired
}

// Epochs returns the number of Ticks run.
func (e *Engine) Epochs() int { return int(e.epoch) }

// Log returns every executed migration in schedule order.
func (e *Engine) Log() []Event { return e.log }

// Stats returns the engine's activity summary.
func (e *Engine) Stats() Stats { return e.stats }

// LogChecksum returns an fnv-64a over the full migration log — the
// byte-determinism witness the serial-vs-parallel tests compare.
func (e *Engine) LogChecksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	for _, ev := range e.log {
		w(uint64(ev.At))
		w(uint64(ev.Done))
		w(uint64(ev.Extent))
		w(uint64(ev.Region.Start))
		w(uint64(ev.Region.Pages))
		w(uint64(ev.From))
		w(uint64(ev.To))
		w(uint64(ev.Reason))
		w(uint64(int64(ev.Heat * 1e6)))
	}
	return h.Sum64()
}
