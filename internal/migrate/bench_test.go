package migrate

import (
	"testing"

	"toss/internal/simtime"
)

// BenchmarkMigrationEngine drives a drifting hot window through a 4-tier
// engine and reports migrations/s — benchjson surfaces it as
// migrations_per_second in BENCH_experiments.json.
func BenchmarkMigrationEngine(b *testing.B) {
	cfg := DefaultConfig(testHierarchy(2048, 4096, 8192))
	cfg.Seed = 42
	const totalPages = 64 * 512 // 512 extents, 128 MiB guest
	var moves int64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e, err := New(cfg, totalPages)
		if err != nil {
			b.Fatal(err)
		}
		for epoch := 0; epoch < 50; epoch++ {
			base := (epoch / 2) * 11 % e.Extents()
			for k := 0; k < 24; k++ {
				e.TouchExtent((base+k)%e.Extents(), float64(48-k))
			}
			e.Tick(simtime.Duration(epoch+1) * cfg.Epoch)
		}
		moves += e.Stats().Moves()
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(moves)/b.Elapsed().Seconds(), "migrations/s")
	}
}
