package migrate

import (
	"testing"

	"toss/internal/guest"
	"toss/internal/mem"
	"toss/internal/par"
	"toss/internal/simtime"
	"toss/internal/telemetry"
)

// testHierarchy returns the default 4-tier stack with explicit capacities
// (in pages) on the bounded tiers. The bottom object tier stays unbounded.
func testHierarchy(dram, cxl, ssd int64) mem.Hierarchy {
	h := mem.DefaultHierarchy()
	h.Tiers[0].CapacityPages = dram
	h.Tiers[1].CapacityPages = cxl
	h.Tiers[2].CapacityPages = ssd
	return h
}

// driftChecksum runs a rotating-hot-window workload for 24 epochs and
// returns the migration-log checksum — the workload the determinism test
// replays serially and under an 8-worker pool.
func driftChecksum(seed int64) uint64 {
	cfg := DefaultConfig(testHierarchy(256, 512, 1024))
	cfg.Seed = seed
	e, err := New(cfg, 64*64) // 64 extents
	if err != nil {
		panic(err)
	}
	for epoch := 0; epoch < 24; epoch++ {
		base := (epoch / 3) * 7 % e.Extents()
		for k := 0; k < 6; k++ {
			e.TouchExtent((base+k)%e.Extents(), float64(20-k))
		}
		e.Tick(simtime.Duration(epoch+1) * cfg.Epoch)
	}
	return e.LogChecksum()
}

// TestDeterminismSerialVsParallel pins the byte-determinism rule from
// TIERS.md: the same seed yields a byte-identical migration log whether
// engines run serially or fanned out over an 8-worker par pool.
func TestDeterminismSerialVsParallel(t *testing.T) {
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i*1000 + 7)
	}
	serial := make([]uint64, len(seeds))
	for i, s := range seeds {
		serial[i] = driftChecksum(s)
	}
	parallel, err := par.Map(par.New(8), seeds, func(_ int, s int64) (uint64, error) {
		return driftChecksum(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if serial[i] != parallel[i] {
			t.Fatalf("seed %d: serial checksum %x != parallel %x", seeds[i], serial[i], parallel[i])
		}
		// Repeat runs must also agree with themselves.
		if again := driftChecksum(seeds[i]); again != serial[i] {
			t.Fatalf("seed %d: rerun checksum %x != first %x", seeds[i], again, serial[i])
		}
	}
	// Different seeds must not all collapse to one log.
	if serial[0] == serial[1] && serial[1] == serial[2] {
		t.Fatalf("checksums do not vary with seed: %x", serial[0])
	}
}

// TestOccupancyInvariant checks that every page is booked to exactly one
// tier through an active migration run.
func TestOccupancyInvariant(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(256, 256, 512))
	cfg.Seed = 3
	total := int64(64 * 40)
	e, err := New(cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		var sum int64
		for _, n := range e.Occupancy() {
			sum += n
		}
		if sum != total {
			t.Fatalf("%s: occupancy sums to %d, want %d (%v)", when, sum, total, e.Occupancy())
		}
	}
	check("initial")
	e.SetLevel(guest.Region{Start: 0, Pages: 256}, 0)
	e.SetLevel(guest.Region{Start: 256, Pages: 256}, 1)
	check("after seeding")
	for epoch := 0; epoch < 12; epoch++ {
		base := (epoch * 5) % e.Extents()
		for k := 0; k < 8; k++ {
			e.TouchExtent((base+k)%e.Extents(), 10)
		}
		e.Tick(simtime.Duration(epoch+1) * cfg.Epoch)
		check("after tick")
	}
	// The exported placement must agree with the engine's books.
	occ := e.Placement().Occupancy()
	for i, n := range e.Occupancy() {
		if occ[i] != n {
			t.Fatalf("placement occupancy %v != engine %v", occ, e.Occupancy())
		}
	}
}

// TestStaticNeverMoves: PolicyStatic only decays heat.
func TestStaticNeverMoves(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(128, 128, 128))
	cfg.Policy = PolicyStatic
	e, _ := New(cfg, 64*8)
	for epoch := 0; epoch < 5; epoch++ {
		e.TouchExtent(epoch%e.Extents(), 1000)
		if evs := e.Tick(simtime.Duration(epoch+1) * cfg.Epoch); len(evs) != 0 {
			t.Fatalf("static policy migrated: %v", evs)
		}
	}
	if e.Stats().Moves() != 0 {
		t.Fatalf("static policy recorded moves: %+v", e.Stats())
	}
}

// TestZeroSizeMiddleTier: a zero-capacity CXL tier is skipped by both the
// desired packing and the demotion cascade — no extent ever lands on it.
func TestZeroSizeMiddleTier(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(64, 0, 128))
	cfg.PrefetchExtents = 0
	e, _ := New(cfg, 64*6)
	e.TouchExtent(0, 100)
	e.TouchExtent(1, 50)
	e.Tick(cfg.Epoch)
	if got := e.LevelOfExtent(0); got != 0 {
		t.Fatalf("hottest extent at level %d, want 0 (dram)", got)
	}
	if got := e.LevelOfExtent(1); got != 2 {
		t.Fatalf("second extent at level %d, want 2 (ssd, skipping empty cxl)", got)
	}
	for i := 0; i < e.Extents(); i++ {
		if e.LevelOfExtent(i) == 1 {
			t.Fatalf("extent %d landed on the zero-size middle tier", i)
		}
	}
}

// TestEvictionCascadesPastFullTier: promoting into a full DRAM tier evicts
// the coldest incumbent, and with the next tier also full the eviction
// cascades one level deeper (demotion under a full lower tier).
func TestEvictionCascadesPastFullTier(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(64, 64, 1024))
	cfg.Policy = PolicyPromoteOnly // no background demotion: force the evict path
	cfg.PrefetchExtents = 0
	e, _ := New(cfg, 64*4)
	e.SetLevel(e.ExtentRegion(0), 0) // cold incumbent fills dram
	e.SetLevel(e.ExtentRegion(1), 1) // fills cxl
	e.TouchExtent(0, 1)
	e.TouchExtent(1, 50)
	e.TouchExtent(2, 100) // challenger from the object tier
	evs := e.Tick(cfg.Epoch)
	if got := e.LevelOfExtent(2); got != 0 {
		t.Fatalf("challenger at level %d, want 0", got)
	}
	if got := e.LevelOfExtent(0); got != 2 {
		t.Fatalf("evicted incumbent at level %d, want 2 (cascaded past full cxl)", got)
	}
	if got := e.LevelOfExtent(1); got != 1 {
		t.Fatalf("cxl incumbent at level %d, want 1 (untouched)", got)
	}
	var evicts, promotes int
	for _, ev := range evs {
		switch ev.Reason {
		case ReasonEvict:
			evicts++
		case ReasonPromote:
			promotes++
		}
	}
	if evicts != 1 || promotes != 1 {
		t.Fatalf("want 1 evict + 1 promote, got %d + %d (%v)", evicts, promotes, evs)
	}
}

// TestPrefetchOnPromote: promoting an extent drags its address-space
// successors to the same tier.
func TestPrefetchOnPromote(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(1024, 1024, 1024))
	cfg.PrefetchExtents = 2
	e, _ := New(cfg, 64*10)
	e.TouchExtent(3, 10)
	evs := e.Tick(cfg.Epoch)
	for _, i := range []int{3, 4, 5} {
		if got := e.LevelOfExtent(i); got != 0 {
			t.Fatalf("extent %d at level %d, want 0", i, got)
		}
	}
	var prefetches int
	for _, ev := range evs {
		if ev.Reason == ReasonPrefetch {
			prefetches++
		}
	}
	if prefetches != 2 {
		t.Fatalf("want 2 prefetch events, got %d (%v)", prefetches, evs)
	}
	if got := e.LevelOfExtent(6); got == 0 {
		t.Fatalf("extent beyond the prefetch window was promoted")
	}
}

// TestHysteresisHoldsIncumbent: a challenger below PromoteMargin times the
// incumbent's heat does not displace it; above the margin it does.
func TestHysteresisHoldsIncumbent(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(64, 1024, 1024))
	cfg.PrefetchExtents = 0
	cfg.MinResidencyEpochs = 0
	e, _ := New(cfg, 64*4)
	e.SetLevel(e.ExtentRegion(0), 0)
	// Incumbent heat 10, challenger 12 < 10*1.5: no churn.
	e.TouchExtent(0, 10)
	e.TouchExtent(1, 12)
	e.Tick(cfg.Epoch)
	if e.LevelOfExtent(0) != 0 || e.LevelOfExtent(1) == 0 {
		t.Fatalf("margin violated: incumbent at %d, challenger at %d",
			e.LevelOfExtent(0), e.LevelOfExtent(1))
	}
	// Challenger pushes past the margin: heat decays to 5 vs fresh 30.
	e.TouchExtent(1, 24) // EWMA: 0.5*12-ish + 24 — clearly > 0.5*10*1.5
	e.Tick(2 * cfg.Epoch)
	if e.LevelOfExtent(1) != 0 {
		t.Fatalf("hot challenger stuck at level %d", e.LevelOfExtent(1))
	}
}

// TestWaitForAndBandwidth: migrations cost virtual time on the daemon, an
// execution overlapping an in-flight extent stalls until the move lands,
// and each epoch schedules at most one epoch of bandwidth.
func TestWaitForAndBandwidth(t *testing.T) {
	h := testHierarchy(1<<20, 1<<20, 1<<20)
	// Slow promote bandwidth so moves are visible: 1 MiB/s into dram.
	h.Tiers[0].PromoteBytesPerSec = 1 << 20
	cfg := DefaultConfig(h)
	cfg.PrefetchExtents = 0
	e, _ := New(cfg, 64*64)
	for i := 0; i < 32; i++ {
		e.TouchExtent(i, float64(100-i))
	}
	evs := e.Tick(cfg.Epoch)
	if len(evs) == 0 {
		t.Fatal("no migrations scheduled")
	}
	// One extent = 256 KiB at 1 MiB/s = 250ms per move: only ~4-5 fit the
	// 1s epoch budget.
	if len(evs) >= 32 {
		t.Fatalf("bandwidth budget did not bound the epoch: %d moves", len(evs))
	}
	first := evs[0]
	if first.Done <= first.At {
		t.Fatalf("move has no duration: %+v", first)
	}
	if w := e.WaitFor(first.Region, first.At); w != first.Done-first.At {
		t.Fatalf("WaitFor mid-flight = %v, want %v", w, first.Done-first.At)
	}
	if w := e.WaitFor(first.Region, first.Done+1); w != 0 {
		t.Fatalf("WaitFor after landing = %v, want 0", w)
	}
	if e.Stats().BusyTime <= 0 {
		t.Fatal("daemon busy time not recorded")
	}
}

// TestOracleInstantAndGreedy: the oracle re-packs with no cost, no busy
// time, and no hysteresis.
func TestOracleInstantAndGreedy(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(64, 64, 64))
	cfg.Policy = PolicyOracle
	cfg.PrefetchExtents = 0
	e, _ := New(cfg, 64*8)
	e.SetLevel(e.ExtentRegion(0), 0)
	e.TouchExtent(0, 10)
	e.TouchExtent(1, 11) // barely hotter: oracle has no margin, so it wins dram
	e.Tick(cfg.Epoch)
	if got := e.LevelOfExtent(1); got != 0 {
		t.Fatalf("oracle kept the colder incumbent: challenger at %d", got)
	}
	if e.Stats().BusyTime != 0 {
		t.Fatalf("oracle paid busy time: %v", e.Stats().BusyTime)
	}
	for _, ev := range e.Log() {
		if ev.Done != ev.At {
			t.Fatalf("oracle move has duration: %+v", ev)
		}
	}
	if w := e.WaitFor(guest.Region{Start: 0, Pages: 64 * 8}, 0); w != 0 {
		t.Fatalf("oracle left busy extents: wait %v", w)
	}
}

// TestTouchRegionWeighting: partial extent overlap contributes fractional
// heat; full overlap contributes perPage.
func TestTouchRegionWeighting(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(1024, 1024, 1024))
	e, _ := New(cfg, 64*4)
	e.Touch(guest.Region{Start: 32, Pages: 64}, 8) // half of extent 0, half of extent 1
	if e.pending[0] != 4 || e.pending[1] != 4 {
		t.Fatalf("half-overlap heat = %v/%v, want 4/4", e.pending[0], e.pending[1])
	}
	e.Touch(guest.Region{Start: 128, Pages: 64}, 8) // exactly extent 2
	if e.pending[2] != 8 {
		t.Fatalf("full-overlap heat = %v, want 8", e.pending[2])
	}
}

// TestMetricsCounters: a wired telemetry registry sees the migrate.*
// counters move.
func TestMetricsCounters(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(1024, 1024, 1024))
	e, _ := New(cfg, 64*10)
	m := telemetry.NewMetrics()
	e.Metrics = m
	e.TouchExtent(2, 50)
	e.Tick(cfg.Epoch)
	if m.Counter(telemetry.MetricMigratePromotions).Value() == 0 {
		t.Fatal("promotion counter did not move")
	}
	if m.Counter(telemetry.MetricMigrateMovedBytes).Value() == 0 {
		t.Fatal("moved-bytes counter did not move")
	}
}

// TestConfigValidate rejects the obvious misconfigurations.
func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(testHierarchy(1, 1, 1))
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"extent", func(c *Config) { c.ExtentPages = 0 }},
		{"epoch", func(c *Config) { c.Epoch = 0 }},
		{"decay", func(c *Config) { c.Decay = 1 }},
		{"margin", func(c *Config) { c.PromoteMargin = 0.5 }},
		{"residency", func(c *Config) { c.MinResidencyEpochs = -1 }},
		{"prefetch", func(c *Config) { c.PrefetchExtents = -1 }},
	} {
		bad := good
		tc.mut(&bad)
		if bad.Validate() == nil {
			t.Fatalf("%s: invalid config accepted", tc.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestTimelineRender smoke-tests the ASCII timeline used by the faasim demo.
func TestTimelineRender(t *testing.T) {
	cfg := DefaultConfig(testHierarchy(256, 512, 1024))
	e, _ := New(cfg, 64*32)
	tl := NewTimeline(e)
	for epoch := 0; epoch < 4; epoch++ {
		e.TouchExtent(epoch*3, 50)
		e.Tick(simtime.Duration(epoch+1) * cfg.Epoch)
		tl.Capture(e, "epoch")
	}
	out := tl.Render(40)
	if len(out) == 0 || out == "(no epochs captured)\n" {
		t.Fatalf("empty timeline: %q", out)
	}
	if s := Summary(e); len(s) == 0 {
		t.Fatal("empty summary")
	}
}

// TestPolicyNames round-trips the policy string forms ext11 and the CLIs use.
func TestPolicyNames(t *testing.T) {
	for _, p := range Policies() {
		got, ok := PolicyByName(p.String())
		if !ok || got != p {
			t.Fatalf("round-trip failed for %v", p)
		}
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Fatal("bogus policy resolved")
	}
}
