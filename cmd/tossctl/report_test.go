package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toss/internal/insight"
	"toss/internal/simtime"
)

// writeDump builds a two-cell insight dump whose p99 series is scaled by
// inflate and writes it to dir/name. inflate=1 is the healthy baseline.
func writeDump(t *testing.T, dir, name string, inflate float64) string {
	t.Helper()
	sink := insight.NewSink()
	for _, cell := range []string{"ext/dram", "ext/toss"} {
		eng := insight.NewEngine(insight.NewStore(insight.Config{}))
		base := 50.0
		if cell == "ext/toss" {
			base = 5.0
		}
		for i := 1; i <= 10; i++ {
			eng.Observe("p99_ms", simtime.Duration(i)*simtime.Second, base*inflate)
			eng.Observe("cold_pct", simtime.Duration(i)*simtime.Second, 0.5)
		}
		sink.Record(eng.Result(cell))
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := insight.WriteDumpJSON(f, sink.Dump()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureReport runs runReport with stdout captured.
func captureReport(t *testing.T, args ...string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	code := runReport(args)
	os.Stdout = orig
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

// TestReportSentinel is the regression sentinel's self-test: a clean
// baseline pair must pass, and a deliberately injected p99 regression must
// flip `tossctl report -fail` to a non-zero exit naming the regressed
// (cell, metric) pair. CI runs the same check end-to-end over real dumps.
func TestReportSentinel(t *testing.T) {
	dir := t.TempDir()
	baseline := writeDump(t, dir, "old.json", 1)
	clean := writeDump(t, dir, "new_clean.json", 1)
	bad := writeDump(t, dir, "new_bad.json", 2)

	code, out := captureReport(t, "-fail", baseline, clean)
	if code != 0 {
		t.Fatalf("clean pair: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "VERDICT: PASS") {
		t.Fatalf("clean pair: missing PASS verdict:\n%s", out)
	}

	code, out = captureReport(t, "-fail", baseline, bad)
	if code != 1 {
		t.Fatalf("injected regression: exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"VERDICT: FAIL", "REGRESSED", "ext/dram", "series p99_ms mean", "+100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("injected regression: verdict missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cold_pct") {
		t.Fatalf("injected regression: unchanged series flagged:\n%s", out)
	}

	// Without -fail the same regression still prints but reports success.
	code, out = captureReport(t, baseline, bad)
	if code != 0 {
		t.Fatalf("report without -fail: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "VERDICT: FAIL") {
		t.Fatalf("report without -fail: missing FAIL verdict:\n%s", out)
	}
}

// TestReportHTML pins the -html artifact: self-contained, no scripts, and
// carrying the same verdict line as the markdown.
func TestReportHTML(t *testing.T) {
	dir := t.TempDir()
	baseline := writeDump(t, dir, "old.json", 1)
	bad := writeDump(t, dir, "new_bad.json", 2)
	htmlPath := filepath.Join(dir, "verdict.html")

	code, _ := captureReport(t, "-html", htmlPath, baseline, bad)
	if code != 0 {
		t.Fatalf("report -html: exit %d, want 0", code)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	page := string(data)
	for _, want := range []string{"<!doctype html>", "VERDICT: FAIL", "ext/dram"} {
		if !strings.Contains(page, want) {
			t.Fatalf("HTML verdict missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Fatal("HTML verdict must not embed scripts")
	}
}

// TestReportUsageErrors pins the exit-2 argument contract: an odd number of
// files is not a valid pairing.
func TestReportUsageErrors(t *testing.T) {
	if code := runReport([]string{"only-one.json"}); code != 2 {
		t.Fatalf("odd file count: exit %d, want 2", code)
	}
	if code := runReport(nil); code != 2 {
		t.Fatalf("no files: exit %d, want 2", code)
	}
}
