// Command tossctl regenerates the paper's tables and figures on the
// simulation substrate.
//
// Usage:
//
//	tossctl [flags] <experiment-id>... | all | list
//
// Experiment ids follow DESIGN.md's per-experiment index: table1, fig1,
// fig2, fig3, fig5, table2, fig6, fig7, fig8, fig9, sec6c3a, sec6c3b.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"toss/internal/experiments"
	"toss/internal/telemetry"
)

func main() {
	iters := flag.Int("iters", 5, "measurement repetitions per data point (paper uses 10)")
	window := flag.Int("window", 12, "profiling convergence window (paper uses 100)")
	seed := flag.Int64("seed", 1, "base seed for all deterministic randomness")
	ratio := flag.Float64("ratio", 2.5, "fast:slow tier cost ratio")
	threshold := flag.Float64("threshold", 0, "slowdown threshold (0 disables; e.g. 0.1 = 10%)")
	timing := flag.Bool("timing", false, "print wall-clock timing per experiment")
	format := flag.String("format", "table", "output format: table, csv, or json")
	metrics := flag.Bool("metrics", false, "collect telemetry metrics and dump them after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tossctl [flags] <experiment>... | all | list\n\nexperiments: %v\n\nflags:\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	suite := experiments.NewSuite()
	suite.Iterations = *iters
	suite.Core.ConvergenceWindow = *window
	suite.BaseSeed = *seed
	suite.Core.SlowdownThreshold = *threshold
	if *ratio != 2.5 {
		m := suite.Core.Cost
		m.CostSlow = m.CostFast / *ratio
		suite.Core.Cost = m
	}

	var met *telemetry.Metrics
	if *metrics {
		met = telemetry.NewMetrics()
		suite.Core.VM.Metrics = met
	}

	ids := flag.Args()
	if len(ids) == 1 {
		switch ids[0] {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
			return
		case "all":
			ids = experiments.IDs()
		}
	}

	// Reject unknown experiment ids before running anything.
	for _, id := range ids {
		if !experiments.Known(id) {
			fmt.Fprintf(os.Stderr, "tossctl: unknown experiment %q\n\n", id)
			flag.Usage()
			os.Exit(2)
		}
	}

	for _, id := range ids {
		start := time.Now()
		t, err := suite.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tossctl: %s: %v\n", id, err)
			os.Exit(1)
		}
		var out string
		switch *format {
		case "table":
			out = t.String()
		case "csv":
			out, err = t.CSV()
		case "json":
			out, err = t.JSON()
		default:
			fmt.Fprintf(os.Stderr, "tossctl: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tossctl: %s: render: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *timing {
			fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		// Per-experiment metrics: dump, then reset in place so cached
		// instrument handles inside the suite stay live for the next id.
		if met != nil {
			fmt.Printf("=== metrics: %s ===\n", id)
			fmt.Print(met.Dump())
			fmt.Println()
			met.Reset()
		}
	}
}
