// Command tossctl regenerates the paper's tables and figures on the
// simulation substrate.
//
// Usage:
//
//	tossctl [flags] <experiment-id>... | all | list
//
// Experiment ids follow DESIGN.md's per-experiment index: the paper set
// (table1, fig1, fig2, fig3, fig5, table2, fig6, fig7, fig8, fig9, sec6c3a,
// sec6c3b) plus the extension catalog ext1-ext11 (EXPERIMENTS.md) — ext11 is
// the N-tier migration frontier (TIERS.md), scaled down by -cluster-scale
// like ext10.
//
// With -parallel N the experiments (and the heavy per-cell sweeps inside
// them) fan out over a bounded worker pool; results are folded in input
// order, so the rendered tables are byte-identical to a serial run.
// -metrics forces serial execution (the telemetry sink records events in
// arrival order). -cpuprofile/-memprofile write pprof profiles of the run.
// -faults <plan.json> injects a fault plan (FAULTS.md) into every
// experiment and likewise forces serial execution.
//
// -xray <out.json> additionally collects every invocation's attribution
// budget (internal/xray), prints each experiment's hottest segments, and
// writes the aggregated per-experiment dump — the input to `tossctl diff`,
// which compares two dumps (or two scripts/benchjson reports) and names the
// segment that regressed. Attribution is parallel-safe: the dump is
// byte-identical for any -parallel value.
//
// -fleetlog <out.jsonl> collects the cluster experiments' fleet decision
// traces (internal/fleetobs): every routing decision with its candidate
// ranking and every autoscaler action of each swept cell's best sustained
// run, as JSON lines tagged with the cell name. Like the attribution dump,
// the log is byte-identical for any -parallel value. Composes with -xray.
//
// -alerts <out.txt> writes the alert-wired experiments' (ext10, ext11)
// virtual-time SLO alert log — fire/resolve edges per cell — and -insight
// <out.json> writes the full insight dump (series summaries + alerts), the
// input to `tossctl report`. Both are byte-identical for any -parallel
// value: alerting replays each cell's recorded outcomes after the run, so
// attaching it changes no decision (OBSERVABILITY.md).
//
// `tossctl report old new [old2 new2 ...] [-fail] [-html out]` is the
// cross-run regression sentinel: it compares pairs of insight dumps, xray
// attribution dumps, or scripts/benchjson reports (formats auto-detected
// per pair), prints a markdown verdict naming each regressed (cell, metric)
// pair, and under -fail exits non-zero when anything regressed — the CI
// gate form.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"toss/internal/cliutil"
	"toss/internal/experiments"
	"toss/internal/fault"
	"toss/internal/fleetobs"
	"toss/internal/insight"
	"toss/internal/telemetry"
	"toss/internal/xray"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		return runDiff(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "report" {
		return runReport(os.Args[2:])
	}
	iters := flag.Int("iters", 5, "measurement repetitions per data point (paper uses 10)")
	window := flag.Int("window", 12, "profiling convergence window (paper uses 100)")
	seed := flag.Int64("seed", 1, "base seed for all deterministic randomness")
	ratio := flag.Float64("ratio", 2.5, "fast:slow tier cost ratio")
	threshold := flag.Float64("threshold", 0, "slowdown threshold (0 disables; e.g. 0.1 = 10%)")
	timing := flag.Bool("timing", false, "print wall-clock timing per experiment")
	format := flag.String("format", "table", "output format: table, csv, or json")
	metrics := flag.Bool("metrics", false, "collect telemetry metrics and dump them after the run (forces -parallel 1)")
	faults := flag.String("faults", "", "JSON fault plan injected into every experiment (see FAULTS.md; forces -parallel 1)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker pool size (1 = serial; output is identical either way)")
	clusterScale := flag.Float64("cluster-scale", 1, "scale for the long-horizon experiments: ext10's day (1 = full ~1.26M-invocation day; CI smoke uses 0.02) and ext11's migration epochs (CI smoke uses 0.25)")
	xrayOut := flag.String("xray", "", "write per-experiment attribution budgets (JSON) to this `file`; compare runs with tossctl diff")
	fleetLog := flag.String("fleetlog", "", "write the cluster experiments' fleet decision logs (JSON lines, one event per routing/scaling decision) to this `file`")
	alerts := flag.String("alerts", "", "write the alert-wired experiments' (ext10, ext11) SLO alert log to this `file`")
	insightOut := flag.String("insight", "", "write the insight dump (series + alerts per cell, JSON) to this `file`; compare runs with tossctl report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tossctl [flags] <experiment>... | all | list\n\nexperiments: %v\n\nflags:\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tossctl:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tossctl:", err)
			}
		}()
	}

	suite := experiments.NewSuite()
	suite.Iterations = *iters
	suite.Core.ConvergenceWindow = *window
	suite.BaseSeed = *seed
	suite.Core.SlowdownThreshold = *threshold
	suite.Workers = *parallel
	suite.ClusterScale = *clusterScale
	if *ratio != 2.5 {
		m := suite.Core.Cost
		m.CostSlow = m.CostFast / *ratio
		suite.Core.Cost = m
	}

	if *faults != "" {
		plan, err := fault.LoadPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 2
		}
		inj, err := fault.New(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 2
		}
		suite.Core.VM.Faults = inj
		// A suite-level injector's sequence counters are shared state:
		// deterministic firing needs serialized queries (Suite.Pool also
		// enforces this; set Workers too so the timing line is honest).
		suite.Workers = 1
	}

	var met *telemetry.Metrics
	if *metrics {
		// Attaching a metrics sink makes Suite.Pool serial, so the
		// per-experiment dump/reset cycle below observes one experiment at
		// a time.
		met = telemetry.NewMetrics()
		suite.Core.VM.Metrics = met
	}

	ids := flag.Args()
	if len(ids) == 1 {
		switch ids[0] {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
			return 0
		case "all":
			ids = experiments.IDs()
		}
	}

	// Reject unknown experiment ids before running anything.
	for _, id := range ids {
		if !experiments.Known(id) {
			fmt.Fprintf(os.Stderr, "tossctl: unknown experiment %q\n\n", id)
			flag.Usage()
			return 2
		}
	}

	// Validate the format before spending minutes computing tables.
	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "tossctl: unknown format %q\n", *format)
		return 2
	}
	render := func(t *experiments.Table) (string, error) {
		switch *format {
		case "csv":
			return t.CSV()
		case "json":
			return t.JSON()
		default:
			return t.String(), nil
		}
	}

	if *fleetLog != "" {
		suite.FleetSink = fleetobs.NewSink()
	}
	if *alerts != "" || *insightOut != "" {
		suite.InsightSink = insight.NewSink()
	}
	finish := func() int {
		if code := writeFleetLog(suite, *fleetLog); code != 0 {
			return code
		}
		return writeInsight(suite, *alerts, *insightOut)
	}

	if *xrayOut != "" {
		if met != nil {
			fmt.Fprintln(os.Stderr, cliutil.MutuallyExclusive("tossctl", "-xray", "-metrics",
				"both re-shape the per-experiment run loop"))
			return 2
		}
		if code := runXRay(suite, ids, *xrayOut, *timing, render); code != 0 {
			return code
		}
		return finish()
	}

	if met != nil {
		// Per-experiment metrics: run one id at a time, dump, then reset in
		// place so cached instrument handles inside the suite stay live.
		for _, id := range ids {
			code := runOne(suite, id, *timing, render)
			if code != 0 {
				return code
			}
			fmt.Printf("=== metrics: %s ===\n", id)
			fmt.Print(met.Dump())
			fmt.Println()
			met.Reset()
		}
		return finish()
	}

	start := time.Now()
	timed, err := suite.RunTimed(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tossctl: %v\n", err)
		return 1
	}
	for _, r := range timed {
		out, err := render(r.Table)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tossctl: %s: render: %v\n", r.ID, err)
			return 1
		}
		fmt.Println(out)
		if *timing {
			fmt.Printf("[%s took %v]\n\n", r.ID, r.Elapsed.Round(time.Millisecond))
		}
	}
	if *timing {
		fmt.Printf("[%d experiments took %v over %d workers]\n",
			len(timed), time.Since(start).Round(time.Millisecond), suite.Pool().Workers())
	}
	return finish()
}

// writeInsight writes the suite's folded alert log and/or insight dump when
// -alerts / -insight asked for them. Both are byte-identical for any
// -parallel value: the sink sorts cells by name and each cell's alert feed
// replays a deterministic record stream.
func writeInsight(suite *experiments.Suite, alertsPath, dumpPath string) int {
	if suite.InsightSink == nil {
		return 0
	}
	if alertsPath != "" {
		f, err := os.Create(alertsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		err = suite.InsightSink.WriteAlertLog(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "tossctl: wrote alert log (%d cells) to %s\n", suite.InsightSink.Len(), alertsPath)
	}
	if dumpPath != "" {
		f, err := os.Create(dumpPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		err = insight.WriteDumpJSON(f, suite.InsightSink.Dump())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "tossctl: wrote insight dump (%d cells) to %s\n", suite.InsightSink.Len(), dumpPath)
	}
	return 0
}

// writeFleetLog writes the suite's folded fleet decision log when -fleetlog
// asked for one. The log is byte-identical for any -parallel value: the sink
// sorts cells by name and each cell's trace comes from a deterministic
// event-loop run.
func writeFleetLog(suite *experiments.Suite, path string) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl:", err)
		return 1
	}
	defer f.Close()
	n, err := suite.FleetSink.WriteTo(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tossctl: wrote fleet decision log (%d cells, %d bytes) to %s\n",
		suite.FleetSink.Len(), n, path)
	return 0
}

// runXRay runs the experiments one id at a time with an attribution
// collector attached (inner per-experiment parallelism is preserved — the
// collector is parallel-safe and aggregation is order-independent), prints
// each experiment's hottest segments after its table, and writes the
// aggregated dump to path.
func runXRay(suite *experiments.Suite, ids []string, path string, timing bool, render func(*experiments.Table) (string, error)) int {
	col := xray.NewCollector()
	suite.Core.VM.XRay = col
	doc := xray.RunDoc{Schema: xray.SchemaVersion}
	start := time.Now()
	for _, id := range ids {
		timed, err := suite.RunTimed([]string{id})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tossctl: %v\n", err)
			return 1
		}
		r := timed[0]
		out, err := render(r.Table)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tossctl: %s: render: %v\n", r.ID, err)
			return 1
		}
		fmt.Println(out)
		rep := xray.Aggregate(id, col.Drain())
		doc.Reports = append(doc.Reports, rep)
		if hot := rep.TopSegments(5); len(hot) > 0 {
			fmt.Printf("xray %s: %d budgets, hottest segments:\n", id, rep.Records)
			for _, h := range hot {
				fmt.Printf("  %-28s %-22s %12v %5.1f%%\n", h.Label, h.Segment, h.Total, h.Share*100)
			}
			fmt.Println()
		}
		if timing {
			fmt.Printf("[%s took %v]\n\n", r.ID, r.Elapsed.Round(time.Millisecond))
		}
	}
	if timing {
		fmt.Printf("[%d experiments took %v over %d workers]\n",
			len(ids), time.Since(start).Round(time.Millisecond), suite.Pool().Workers())
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl:", err)
		return 1
	}
	defer f.Close()
	if err := xray.WriteJSON(f, doc); err != nil {
		fmt.Fprintln(os.Stderr, "tossctl:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tossctl: wrote attribution dump for %d experiments to %s\n", len(doc.Reports), path)
	return 0
}

// runOne executes and renders a single experiment (metrics mode).
func runOne(suite *experiments.Suite, id string, timing bool, render func(*experiments.Table) (string, error)) int {
	start := time.Now()
	t, err := suite.Run(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tossctl: %s: %v\n", id, err)
		return 1
	}
	out, err := render(t)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tossctl: %s: render: %v\n", id, err)
		return 1
	}
	fmt.Println(out)
	if timing {
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
