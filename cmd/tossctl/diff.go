package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"toss/internal/simtime"
	"toss/internal/xray"
)

// runDiff implements `tossctl diff [-threshold F] [-fail] old.json new.json`:
// run-to-run regression diffing over either of the two run artifacts —
// attribution dumps written by `tossctl -xray` (which segment regressed, per
// experiment and function) or benchmark reports written by scripts/benchjson
// (which benchmark's ns/op regressed). The format is auto-detected. Two
// same-seed attribution dumps are byte-identical, so the diff reports zero
// regressions — the determinism check CI leans on.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.25, "relative change below which a difference is noise (0.25 = 25%)")
	fail := fs.Bool("fail", false, "exit 1 when regressions are found (default: warn only)")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: tossctl diff [-threshold F] [-fail] old.json new.json\n\n"+
			"Compares two attribution dumps (tossctl -xray) or two benchmark\n"+
			"reports (scripts/benchjson) and reports which cells regressed.\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldDoc, err := loadRunDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl: diff:", err)
		return 1
	}
	newDoc, err := loadRunDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl: diff:", err)
		return 1
	}
	res, err := xray.Diff(oldDoc, newDoc, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tossctl: diff:", err)
		return 1
	}
	fmt.Print(res.Format(*threshold))
	if *fail && len(res.Regressions) > 0 {
		return 1
	}
	return 0
}

// docProbe sniffs which artifact a JSON file is: attribution dumps carry
// "experiments", benchjson reports carry "benchmarks", insight dumps
// (tossctl -insight) carry "cells".
type docProbe struct {
	Experiments []json.RawMessage `json:"experiments"`
	Benchmarks  []json.RawMessage `json:"benchmarks"`
	Cells       []json.RawMessage `json:"cells"`
}

// benchDoc mirrors the fields of scripts/benchjson's report that diffing
// consumes.
type benchDoc struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		Package string  `json:"package"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// loadRunDoc reads either artifact into the common diffable document.
// Benchmark reports become one (package, benchmark, "ns/op") cell each, so
// the same cell-wise diff covers both.
func loadRunDoc(path string) (xray.RunDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return xray.RunDoc{}, err
	}
	var probe docProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return xray.RunDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Experiments == nil && probe.Benchmarks != nil {
		var bd benchDoc
		if err := json.Unmarshal(data, &bd); err != nil {
			return xray.RunDoc{}, fmt.Errorf("%s: %w", path, err)
		}
		return benchToRunDoc(bd), nil
	}
	doc, err := xray.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return xray.RunDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// benchToRunDoc maps a benchmark report onto the attribution document shape:
// one report per package, one function per benchmark, one "ns/op" segment.
// The schema is pinned so reports written before benchjson stamped versions
// still compare against current ones.
func benchToRunDoc(bd benchDoc) xray.RunDoc {
	doc := xray.RunDoc{Schema: xray.SchemaVersion}
	byPkg := map[string]*xray.Report{}
	for _, b := range bd.Benchmarks {
		pkg := b.Package
		if pkg == "" {
			pkg = "bench"
		}
		rep := byPkg[pkg]
		if rep == nil {
			rep = &xray.Report{Experiment: pkg}
			byPkg[pkg] = rep
			doc.Reports = append(doc.Reports, rep)
		}
		ns := simtime.Duration(math.Round(b.NsPerOp))
		rep.Records++
		rep.Total += ns
		rep.Functions = append(rep.Functions, xray.FunctionReport{
			Label:    b.Name,
			Records:  1,
			Total:    ns,
			Segments: []xray.SegmentStat{{ID: "ns/op", Total: ns, Count: 1}},
		})
	}
	return doc
}
