package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"toss/internal/insight"
	"toss/internal/xray"
)

// runReport implements the cross-run regression sentinel:
//
//	tossctl report [-threshold F] [-fail] [-html out] old new [old2 new2 ...]
//
// Each (old, new) pair is one artifact comparison; the format of each pair
// is auto-detected from its old file — insight dumps (tossctl -insight),
// attribution dumps (tossctl -xray), or benchmark reports
// (scripts/benchjson). The verdict prints as markdown on stdout naming
// every regressed (cell, metric) pair, -html additionally writes a
// self-contained page, and -fail turns any regression into exit status 1 —
// the shape CI consumes. Two same-seed runs produce byte-identical
// artifacts, so a clean pair always reports PASS.
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.25, "relative change past which a cell regresses (0.25 = 25%)")
	fail := fs.Bool("fail", false, "exit 1 when any section regressed (default: report only)")
	htmlOut := fs.String("html", "", "also write the verdict as a self-contained HTML page to this `file`")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: tossctl report [-threshold F] [-fail] [-html out] old new [old2 new2 ...]\n\n"+
			"Compares pairs of run artifacts — insight dumps (tossctl -insight),\n"+
			"attribution dumps (tossctl -xray), or benchmark reports\n"+
			"(scripts/benchjson); formats auto-detected per pair — and prints a\n"+
			"markdown verdict naming each regressed (cell, metric) pair.\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 || fs.NArg()%2 != 0 {
		fs.Usage()
		return 2
	}
	verdict := &insight.Verdict{Threshold: *threshold}
	for i := 0; i < fs.NArg(); i += 2 {
		sec, err := reportSection(fs.Arg(i), fs.Arg(i+1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl: report:", err)
			return 1
		}
		verdict.Sections = append(verdict.Sections, sec)
	}
	if err := verdict.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tossctl: report:", err)
		return 1
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl: report:", err)
			return 1
		}
		err = verdict.WriteHTML(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tossctl: report:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "tossctl: wrote HTML verdict to %s\n", *htmlOut)
	}
	if *fail && verdict.Failed() {
		return 1
	}
	return 0
}

// reportSection compares one (old, new) artifact pair into a verdict
// section. The old file decides the pair's format; mixing formats inside a
// pair is an error (the insight/xray readers reject the other's schema).
func reportSection(oldPath, newPath string, threshold float64) (insight.Section, error) {
	title := oldPath + " -> " + newPath
	isInsight, err := probeInsight(oldPath)
	if err != nil {
		return insight.Section{}, err
	}
	if isInsight {
		oldDump, err := insight.ReadDumpFile(oldPath)
		if err != nil {
			return insight.Section{}, err
		}
		newDump, err := insight.ReadDumpFile(newPath)
		if err != nil {
			return insight.Section{}, err
		}
		return insight.DiffDumps(title, oldDump, newDump, threshold)
	}
	// Attribution dumps and benchjson reports both load through the diff
	// subcommand's RunDoc bridge; keep the report's kind label honest.
	kind := "xray"
	if probe, err := probeFile(oldPath); err == nil && probe.Experiments == nil && probe.Benchmarks != nil {
		kind = "bench"
	}
	oldDoc, err := loadRunDoc(oldPath)
	if err != nil {
		return insight.Section{}, err
	}
	newDoc, err := loadRunDoc(newPath)
	if err != nil {
		return insight.Section{}, err
	}
	res, err := xray.Diff(oldDoc, newDoc, threshold)
	if err != nil {
		return insight.Section{}, err
	}
	return insight.SectionFromXRayDiff(title, kind, res), nil
}

// probeFile reads just enough of a JSON artifact to classify it.
func probeFile(path string) (docProbe, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return docProbe{}, err
	}
	var probe docProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return docProbe{}, fmt.Errorf("%s: %w", path, err)
	}
	return probe, nil
}

// probeInsight reports whether the file is an insight dump.
func probeInsight(path string) (bool, error) {
	probe, err := probeFile(path)
	if err != nil {
		return false, err
	}
	return probe.Cells != nil && probe.Experiments == nil && probe.Benchmarks == nil, nil
}
