package main

import (
	"fmt"
	"os"
	"strings"

	"toss/internal/core"
	"toss/internal/mem"
	"toss/internal/migrate"
	"toss/internal/simtime"
	"toss/internal/workload"
)

// runMigrateDemo profiles one function through the TOSS pipeline, seeds the
// N-tier migration engine from its tiered snapshot, then drives a drifting
// hot window over the resident extents for a fixed number of epochs and
// renders the ASCII tier timeline: one row per epoch, one column per extent
// bucket, glyph = tier. The walkthrough in the README ("Watching a region
// migrate") narrates the output. Everything is seeded, so the bytes are
// reproducible for a given -seed and function.
func runMigrateDemo(fnName string, window int, seed int64) int {
	const (
		epochs    = 24
		heatTouch = 64 // per-page touches an epoch of window residency earns
	)
	spec, ok := workload.ByName(strings.TrimSpace(fnName))
	if !ok {
		fmt.Fprintf(os.Stderr, "faasim: unknown function %q (known: %v)\n", fnName, workload.Names())
		return 2
	}

	cfg := core.DefaultConfig()
	cfg.ConvergenceWindow = window
	pd, _, err := core.NewProfileData(cfg, spec, workload.Levels[0], seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}
	for i := 0; i < cfg.ConvergenceWindow; i++ {
		lv := workload.Levels[i%len(workload.Levels)]
		if _, _, err := pd.ProfileInvocation(cfg, lv, seed+int64(i)+1, 1); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			return 1
		}
	}
	analysis, err := core.Analyze(cfg, pd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}
	tiered := core.BuildSnapshot(pd, analysis)

	h := mem.DefaultHierarchy()
	mp, err := tiered.SeedPlacement(h.Levels(), 0, 1, h.Bottom())
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}

	// Probe pass: find the resident extents so the tiers can be sized
	// against the working set (DRAM holds a quarter of it — enough pressure
	// that the window's drift forces real promotion/demotion traffic).
	probe, err := migrate.New(migrate.DefaultConfig(h), tiered.GuestPages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}
	var resident []int
	for i := 0; i < probe.Extents(); i++ {
		if mp.LevelOf(probe.ExtentRegion(i).Start) != h.Bottom() {
			resident = append(resident, i)
		}
	}
	if len(resident) < 8 {
		fmt.Fprintf(os.Stderr, "faasim: only %d resident extents in %s's snapshot\n", len(resident), spec.Name)
		return 1
	}
	windowExtents := len(resident) / 4
	extPages := probe.ExtentRegion(resident[0]).Pages
	drift := windowExtents / 8
	if drift < 1 {
		drift = 1
	}

	h = h.Clone()
	h.Tiers[0].CapacityPages = int64(windowExtents) * extPages
	h.Tiers[1].CapacityPages = 2 * h.Tiers[0].CapacityPages
	h.Tiers[2].CapacityPages = 4 * h.Tiers[0].CapacityPages

	mcfg := migrate.DefaultConfig(h)
	mcfg.Policy = migrate.PolicyFull
	mcfg.PrefetchExtents = drift
	mcfg.Seed = seed
	eng, err := migrate.New(mcfg, tiered.GuestPages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}
	// Seeding may overfill the now-lean DRAM tier; the first tick's repack
	// demotes the overflow, which is itself part of the show.
	eng.LoadPlacement(mp)
	for _, hr := range pd.HeatRegions(cfg.MergeDelta) {
		eng.Touch(hr.Region, hr.PerPage)
	}

	fmt.Printf("migrate demo: %s, %d guest pages, %d resident extents (%d pages each)\n",
		spec.Name, tiered.GuestPages, len(resident), extPages)
	fmt.Printf("window %d extents drifting %d/epoch, policy %s, epoch %v\n\n",
		windowExtents, drift, mcfg.Policy, mcfg.Epoch)

	tl := migrate.NewTimeline(eng)
	tl.Capture(eng, "seed")
	for ep := 0; ep < epochs; ep++ {
		start := (ep * drift) % len(resident)
		for w := 0; w < windowExtents; w++ {
			eng.TouchExtent(resident[(start+w)%len(resident)], float64(heatTouch*extPages))
		}
		eng.Tick(simtime.Duration(ep+1) * mcfg.Epoch)
		tl.Capture(eng, fmt.Sprintf("e%02d", ep+1))
	}

	fmt.Print(tl.Render(96))
	fmt.Printf("\n%s", migrate.Summary(eng))
	return 0
}
