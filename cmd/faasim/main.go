// Command faasim runs the simulated serverless platform end to end: it
// registers Table I functions under a chosen snapshot mode (toss, reap,
// faasnap, dram, or slow), replays a randomized invocation trace through a
// worker pool, and prints per-function statistics including the TOSS
// lifecycle phase and the billed memory cost.
//
// With -fault-rate, a uniform fault plan (fault.UniformPlan, seeded by
// -fault-seed) is injected into every machine: slow-tier and disk read
// stalls, slow-tier outages, snapshot corruption, stale profiles, and
// keep-alive eviction storms. The platform retries and degrades per
// FAULTS.md; a post-replay summary reports per-site firings, degraded
// serves, and retries. Fault injection forces a single worker so the
// deterministic firing sequence — and the output — is reproducible.
//
// With -trace, every invocation is recorded as a virtual-time span tree and
// written as a Chrome trace_event file (load it at https://ui.perfetto.dev)
// or JSON lines; -flame additionally prints an ASCII flame summary of the
// first invocation. Tracing forces a single worker so span order — and the
// output bytes — are deterministic for a given seed.
//
// The flight recorder (-http, -prom, -csv, -heatmap) samples every metric on
// a virtual-time cadence (-record-interval) and tracks per-function tier
// residency. -prom and -csv write byte-deterministic exports; -heatmap
// prints an ASCII tier-residency heatmap; -http serves the live dashboard
// (/metrics, /timeseries.json, /heatmap, /healthz, /debug/pprof/) after the
// replay finishes. The recorder, like tracing, forces a single worker.
//
// With -nodes N, faasim switches to cluster mode (internal/cluster): it
// profiles the functions once through the single-host machinery, generates a
// seeded arrival stream (-arrival poisson|diurnal|flash over -horizon at
// -mean-iat), and replays it through a fleet of N modeled nodes behind the
// chosen -router (rr, least, or affinity) with an optional -autoscale.
// Cluster mode is a serial event loop and excludes the replay-only surfaces
// (-trace, -fault-rate, ...); -slo, -explain, and -http work in both modes.
//
// Cluster runs are fully explainable: -fleetview prints the ASCII fleet
// dashboard (per-node utilization heat, queue depths, tier occupancy, p99);
// -decision-log writes every routing decision (chosen node, reason,
// candidate ranking) and autoscaler action as JSON lines; -fleet-trace
// writes the same trace as a Chrome trace_event file with one track per
// node; -http serves the node grid live at /fleet and /fleet.json. All four
// render from the same virtual-time recorder (internal/fleetobs), so the
// artifacts are byte-deterministic for a given flag set.
//
// With -alerts (requires -slo), the insight layer (internal/insight)
// evaluates multi-window multi-burn-rate alert rules over the run's virtual
// timeline after it completes and prints the deterministic alert log —
// fire/resolve edges, each blamed on the hottest attribution segment when
// the xray collector is on. -report writes the run's insight dump, the
// input `tossctl report` compares across runs; -http additionally serves
// the alert panel at /alerts. Replay mode forces a single worker (the feed
// replays a serial timeline); cluster mode feeds the engine from the
// completion-ordered record log after the event loop finishes, so
// observation changes no simulated decision in either mode.
//
// With -migrate-demo, faasim skips the replay entirely: it profiles the
// first -functions entry through the TOSS pipeline, seeds the N-tier
// migration engine (internal/migrate) from the tiered snapshot, drives a
// drifting hot window for 24 epochs, and renders the ASCII tier timeline —
// one row per epoch, one column per extent bucket, glyph = tier — followed
// by per-tier occupancy and the daemon's move statistics. TIERS.md explains
// the model; the README's "Watching a region migrate" walks the output.
//
// Usage:
//
//	faasim [-mode toss|reap|faasnap|dram|slow] [-requests N] [-workers N]
//	       [-functions a,b,c] [-fault-rate 0.05] [-fault-seed N]
//	       [-trace out.json] [-trace-format chrome|jsonl] [-flame]
//	       [-http :8080] [-prom out.prom] [-csv out.csv] [-heatmap]
//	       [-record-interval 100ms] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	       [-nodes N] [-router rr|least|affinity] [-arrival poisson|diurnal|flash]
//	       [-horizon 60s] [-mean-iat 100ms] [-autoscale]
//	       [-fleetview] [-decision-log out.jsonl] [-fleet-trace out.json]
//	       [-explain] [-explain-top N] [-slo 100ms] [-slo-window 10s]
//	       [-alerts] [-report insight.json] [-migrate-demo]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"toss/internal/cliutil"
	"toss/internal/core"
	"toss/internal/fault"
	"toss/internal/insight"
	"toss/internal/obs"
	"toss/internal/platform"
	"toss/internal/simtime"
	"toss/internal/telemetry"
	"toss/internal/workload"
	"toss/internal/xray"
)

func main() {
	modeFlag := flag.String("mode", "toss", "snapshot mode: toss, reap, faasnap, dram, or slow")
	requests := flag.Int("requests", 400, "number of invocations to replay")
	workers := flag.Int("workers", 4, "invoker pool size")
	fns := flag.String("functions", "pyaes,json_load_dump,compress", "comma-separated Table I functions")
	window := flag.Int("window", 12, "TOSS profiling convergence window")
	seed := flag.Int64("seed", 42, "trace seed")
	traceOut := flag.String("trace", "", "write a virtual-time trace to this file (forces -workers 1)")
	traceFormat := flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
	flame := flag.Bool("flame", false, "print an ASCII flame summary of the first traced invocation")
	httpAddr := flag.String("http", "", "serve the live dashboard on this address after the replay (forces -workers 1)")
	promOut := flag.String("prom", "", "write a Prometheus text export to this file (forces -workers 1)")
	csvOut := flag.String("csv", "", "write the sampled series as CSV to this file (forces -workers 1)")
	heatmap := flag.Bool("heatmap", false, "print the ASCII tier-residency heatmap (forces -workers 1)")
	recordInterval := flag.Duration("record-interval", 100*time.Millisecond, "flight-recorder sampling cadence in virtual time")
	faultRate := flag.Float64("fault-rate", 0, "uniform per-site fault rate in [0, 1] (0 disables; forces -workers 1)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-plan seed (with -fault-rate)")
	nodes := flag.Int("nodes", 0, "simulate a fleet of N nodes instead of one host (cluster mode)")
	router := flag.String("router", "affinity", "cluster routing policy: rr, least, or affinity (with -nodes)")
	arrival := flag.String("arrival", "poisson", "cluster arrival process: poisson, diurnal, or flash (with -nodes)")
	horizon := flag.Duration("horizon", 60*time.Second, "cluster arrival horizon in virtual time (with -nodes)")
	meanIAT := flag.Duration("mean-iat", 100*time.Millisecond, "cluster mean inter-arrival time (with -nodes)")
	autoscale := flag.Bool("autoscale", false, "enable the cluster autoscaler (with -nodes; fleet may grow to 4x)")
	fleetview := flag.Bool("fleetview", false, "print the ASCII fleet dashboard after the cluster run (with -nodes)")
	decisionLog := flag.String("decision-log", "", "write the cluster run's routing/scaling decisions as JSON lines to this `file` (with -nodes)")
	fleetTrace := flag.String("fleet-trace", "", "write the cluster run's decision trace as a Chrome trace_event `file`, one track per node (with -nodes)")
	migrateDemo := flag.Bool("migrate-demo", false, "render the N-tier migration timeline for the first -functions entry and exit")
	explain := flag.Bool("explain", false, "print per-function latency attribution waterfalls after the replay")
	explainTop := flag.Int("explain-top", 0, "print full attribution waterfalls for the N slowest invocations")
	slo := flag.Duration("slo", 0, "latency objective; reports SLO burn (violations, burn rate, peak windowed burn) after the replay")
	sloWindow := flag.Duration("slo-window", 10*time.Second, "virtual-time window for the peak burn rate (with -slo)")
	alerts := flag.Bool("alerts", false, "evaluate multi-window SLO alert rules over the run's virtual timeline and print the alert log (with -slo; forces -workers 1)")
	reportOut := flag.String("report", "", "write the run's insight dump (series summaries + alert edges, JSON — tossctl report input) to this `file` (with -slo; forces -workers 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the replay")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
	}

	var mode platform.Mode
	switch *modeFlag {
	case "toss":
		mode = platform.ModeTOSS
	case "reap":
		mode = platform.ModeREAP
	case "faasnap":
		mode = platform.ModeFaaSnap
	case "dram":
		mode = platform.ModeDRAM
	case "slow":
		mode = platform.ModeSlow
	default:
		fmt.Fprintf(os.Stderr, "faasim: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	// The migration demo is a self-contained pipeline: profile one function,
	// seed the N-tier engine from its snapshot, render the drift timeline.
	if *migrateDemo {
		if *nodes > 0 {
			fmt.Fprintln(os.Stderr, cliutil.MutuallyExclusive("faasim", "-migrate-demo", "-nodes",
				"the migration demo drives one engine, not a fleet"))
			os.Exit(2)
		}
		os.Exit(runMigrateDemo(strings.Split(*fns, ",")[0], *window, *seed))
	}

	// Deterministic output (span order, recorder timeline) needs serialized
	// invocations. Warn once, whichever feature tripped it first.
	workersSetExplicitly := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSetExplicitly = true
		}
	})
	// All flag-interaction diagnostics share one format that names the
	// conflicting flag pair (see the README's flag interaction table);
	// internal/cliutil renders them for faasim and tossctl alike.
	forcer := &cliutil.WorkerForcer{Prog: "faasim", Workers: workers, Err: os.Stderr}
	forceSingleWorker := func(flagName, why string) { forcer.Force(flagName, why) }

	// Alerting needs the -slo objective to define what a violation is, in
	// either mode.
	alerting := *alerts || *reportOut != ""
	if alerting && *slo <= 0 {
		name := "-alerts"
		if !*alerts {
			name = "-report"
		}
		fmt.Fprintln(os.Stderr, cliutil.Requires("faasim", name, "-slo",
			"alert rules burn against the -slo latency objective"))
		os.Exit(2)
	}

	// Cluster mode is a different simulator: a modeled fleet fed by arrival
	// generators, not the microVM replay loop. Its flags make no sense
	// without -nodes, and the replay-only surfaces make no sense with it.
	clusterOnly := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "router", "arrival", "horizon", "mean-iat", "autoscale",
			"fleetview", "decision-log", "fleet-trace":
			clusterOnly["-"+f.Name] = true
		}
	})
	if *nodes <= 0 {
		for _, name := range []string{"-router", "-arrival", "-horizon", "-mean-iat", "-autoscale",
			"-fleetview", "-decision-log", "-fleet-trace"} {
			if clusterOnly[name] {
				fmt.Fprintln(os.Stderr, cliutil.Requires("faasim", name, "-nodes",
					"cluster mode routes through the fleet simulator"))
				os.Exit(2)
			}
		}
	} else {
		// -http is NOT in this list: cluster mode serves the dashboard too
		// (node grid at /fleet, attribution at /xray when -explain is on).
		for _, conflict := range []struct {
			set  bool
			name string
		}{
			{*traceOut != "", "-trace"},
			{*flame, "-flame"},
			{*promOut != "", "-prom"},
			{*csvOut != "", "-csv"},
			{*heatmap, "-heatmap"},
			{*faultRate > 0, "-fault-rate"},
		} {
			if conflict.set {
				fmt.Fprintln(os.Stderr, cliutil.MutuallyExclusive("faasim", "-nodes", conflict.name,
					"the cluster simulator replays a modeled fleet, not the microVM platform"))
				os.Exit(2)
			}
		}
		if workersSetExplicitly && *workers > 1 {
			fmt.Fprintln(os.Stderr, cliutil.ConflictFatal("faasim", "-nodes", *workers,
				"the cluster event loop is serial by construction"))
			os.Exit(2)
		}
		names := strings.Split(*fns, ",")
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
			if _, ok := workload.ByName(names[i]); !ok {
				fmt.Fprintf(os.Stderr, "faasim: unknown function %q (known: %v)\n", name, workload.Names())
				os.Exit(2)
			}
		}
		os.Exit(runCluster(clusterOpts{
			nodes:          *nodes,
			router:         *router,
			arrival:        *arrival,
			horizon:        *horizon,
			meanIAT:        *meanIAT,
			autoscale:      *autoscale,
			mode:           mode,
			window:         *window,
			seed:           *seed,
			functions:      names,
			slo:            *slo,
			sloWindow:      *sloWindow,
			alerts:         *alerts,
			reportOut:      *reportOut,
			explain:        *explain,
			explainTop:     *explainTop,
			fleetview:      *fleetview,
			decisionLog:    *decisionLog,
			fleetTrace:     *fleetTrace,
			httpAddr:       *httpAddr,
			recordInterval: *recordInterval,
		}))
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" || *flame {
		switch *traceFormat {
		case "chrome", "jsonl":
		default:
			fmt.Fprintf(os.Stderr, "faasim: unknown trace format %q (want chrome or jsonl)\n", *traceFormat)
			os.Exit(2)
		}
		tracer = telemetry.NewTracer()
		if *traceOut != "" {
			forceSingleWorker("-trace", "span order is only deterministic serially")
		} else {
			forceSingleWorker("-flame", "span order is only deterministic serially")
		}
	}

	if alerting {
		// The alert feed accumulates the run's virtual timeline in record
		// order, the same serial-only property -slo's burn summary has.
		name := "-alerts"
		if !*alerts {
			name = "-report"
		}
		forceSingleWorker(name, "the alert feed replays a serial timeline")
	}
	recording := *httpAddr != "" || *promOut != "" || *csvOut != "" || *heatmap
	if *httpAddr != "" && workersSetExplicitly && *workers > 1 {
		fmt.Fprintln(os.Stderr, cliutil.ConflictFatal("faasim", "-http", *workers,
			"the dashboard serves a deterministic timeline"))
		os.Exit(2)
	}
	if recording {
		switch {
		case *httpAddr != "":
			forceSingleWorker("-http", "the flight recorder samples a serial timeline")
		case *promOut != "":
			forceSingleWorker("-prom", "the flight recorder samples a serial timeline")
		case *csvOut != "":
			forceSingleWorker("-csv", "the flight recorder samples a serial timeline")
		default:
			forceSingleWorker("-heatmap", "the flight recorder samples a serial timeline")
		}
	}

	cfg := core.DefaultConfig()
	cfg.ConvergenceWindow = *window
	if tracer != nil || recording {
		cfg.VM.Metrics = telemetry.NewMetrics()
	}
	var inj *fault.Injector
	if *faultRate > 0 {
		var err error
		if inj, err = fault.New(fault.UniformPlan(*faultRate, *faultSeed)); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(2)
		}
		cfg.VM.Faults = inj
		// The injector's per-(site,function) sequence counters are shared
		// state: concurrent invocations would race the firing order.
		forceSingleWorker("-fault-rate", "the injector's firing sequence is shared state")
	}
	var xcol *xray.Collector
	if *explain || *explainTop > 0 || recording {
		// Attribution is parallel-safe: no worker forcing here. The recorder
		// gets a collector too so the dashboard can serve the budget panel.
		xcol = xray.NewCollector()
		cfg.VM.XRay = xcol
	}
	p, err := platform.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		os.Exit(1)
	}
	p.SetTracer(tracer)

	var rec *obs.Recorder
	if recording {
		rec = obs.New(obs.Config{
			Interval: simtime.Duration(recordInterval.Nanoseconds()),
			Metrics:  cfg.VM.Metrics,
		})
		rec.SetXRay(xcol)  // the dashboard's /xray panel and /xray.json
		p.SetRecorder(rec) // before Register: TOSS hooks wire at registration
	}

	names := strings.Split(*fns, ",")
	for _, name := range names {
		spec, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "faasim: unknown function %q (known: %v)\n", name, workload.Names())
			os.Exit(2)
		}
		if err := p.Register(spec, mode); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	reqs := make([]platform.Request, 0, *requests)
	for i := 0; i < *requests; i++ {
		reqs = append(reqs, platform.Request{
			Function: names[rng.Intn(len(names))],
			Level:    workload.Levels[rng.Intn(len(workload.Levels))],
			Seed:     rng.Int63n(1 << 40),
		})
	}

	fmt.Printf("replaying %d requests over %d workers in %s mode...\n\n",
		len(reqs), *workers, mode)
	records := p.Replay(reqs, *workers)

	// Profiles cover the replay itself, not the report/serve tail (which can
	// block forever under -http).
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if err := writeExport(*memprofile, func(f *os.File) error {
			runtime.GC()
			return pprof.WriteHeapProfile(f)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
	}

	var failed int
	for _, r := range records {
		if r.Err != nil {
			failed++
		}
	}

	sort.Strings(names)
	fmt.Printf("%-18s %8s %10s %12s %12s %10s %10s\n",
		"function", "invokes", "phase", "mean exec", "max exec", "cost", "slow %")
	for _, name := range names {
		st, err := p.Stats(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
		phase := "-"
		if mode == platform.ModeTOSS {
			phase = st.Phase.String()
		}
		fmt.Printf("%-18s %8d %10s %12s %12s %10.3f %9.1f%%\n",
			name, st.Invocations, phase,
			st.MeanExec().Std().Round(10e3).String(),
			st.MaxExec.Std().Round(10e3).String(),
			st.NormCost, st.SlowShare*100)
	}

	if inj != nil {
		var degraded, retries int
		for _, r := range records {
			if r.Degraded != "" {
				degraded++
			}
			retries += r.Retries
		}
		counts := inj.Counts()
		fmt.Printf("\nfaults: %d injected (degraded serves %d, retries %d)\n",
			inj.Total(), degraded, retries)
		for _, site := range fault.Sites() {
			if n := counts[site]; n > 0 {
				fmt.Printf("  %-16s %6d\n", site, n)
			}
		}
	}

	if *slo > 0 {
		// Burn tracking runs on the platform's accumulated virtual timeline:
		// each record completes at the running sum of invocation times, in
		// replay record order (deterministic for a given seed and workers).
		burn := xray.NewBurnTracker(
			simtime.FromStd(*slo), simtime.FromStd(*sloWindow))
		var at simtime.Duration
		for _, r := range records {
			if r.Err != nil {
				continue
			}
			at += r.Total()
			burn.Record(at, r.Total())
		}
		fmt.Printf("\n%s", burn.Summary())
	}

	if alerting {
		// The engine walks the same accumulated virtual timeline the burn
		// summary uses; with attribution on, every fire edge carries the
		// hottest segment as its blame.
		objective := simtime.FromStd(*slo)
		fast := simtime.FromStd(*sloWindow)
		eng := insight.NewEngine(nil,
			insight.BurnRule("latency-slo", "latency", objective, fast, 4*fast, 0.10, 0.05))
		if xcol != nil {
			budgets := make([]*xray.Budget, 0, len(records))
			for _, r := range records {
				if r.XRay != nil {
					budgets = append(budgets, r.XRay)
				}
			}
			eng.SetBlamer(insight.BlameTop(xray.Aggregate("replay", budgets)))
		}
		var at simtime.Duration
		for _, r := range records {
			if r.Err != nil {
				continue
			}
			at += r.Total()
			eng.ObserveLatency("latency", at, r.Total())
		}
		res := eng.Result("replay/" + mode.String())
		if *alerts {
			fmt.Println()
			if err := insight.WriteAlertLog(os.Stdout, []insight.Result{res}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
		}
		if *reportOut != "" {
			if err := writeExport(*reportOut, func(f *os.File) error {
				return insight.WriteDumpJSON(f, insight.Dump{
					Schema: insight.SchemaVersion,
					Cells:  []insight.Result{res},
				})
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
			fmt.Printf("insight: wrote dump to %s\n", *reportOut)
		}
		rec.SetInsight(eng) // the dashboard's /alerts panel (nil-safe)
	}

	if *explain || *explainTop > 0 {
		budgets := make([]*xray.Budget, 0, len(records))
		for _, r := range records {
			if r.XRay != nil {
				budgets = append(budgets, r.XRay)
			}
		}
		if *explain {
			rep := xray.Aggregate("replay", budgets)
			fmt.Printf("\nattribution (%d budgets, mean per record):\n", rep.Records)
			for i := range rep.Functions {
				fmt.Print(xray.ReportWaterfall(&rep.Functions[i], 32))
			}
		}
		if *explainTop > 0 {
			slowest := append([]*xray.Budget(nil), budgets...)
			sort.SliceStable(slowest, func(i, j int) bool {
				return slowest[i].Recorded() > slowest[j].Recorded()
			})
			if len(slowest) > *explainTop {
				slowest = slowest[:*explainTop]
			}
			fmt.Printf("\nslowest %d invocations:\n", len(slowest))
			for _, b := range slowest {
				fmt.Print(xray.Waterfall(b, 32))
			}
		}
	}

	if tracer != nil {
		spans := tracer.Spans()
		fmt.Printf("\ntrace: %s\n", telemetry.Summarize(spans))
		if *traceOut != "" {
			if err := writeTrace(*traceOut, *traceFormat, spans); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: wrote %d spans to %s (%s)\n", len(spans), *traceOut, *traceFormat)
		}
		if *flame {
			fmt.Printf("\nflame (first invocation):\n%s", telemetry.FlameSummary(spans, 0))
		}
	}

	if rec != nil {
		if *heatmap {
			fmt.Printf("\n%s", obs.RenderHeatmap(rec.Snapshot(), 64))
		}
		if *promOut != "" {
			if err := writeExport(*promOut, func(f *os.File) error {
				return obs.WritePrometheus(f, rec.Metrics())
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
			fmt.Printf("recorder: wrote Prometheus export to %s\n", *promOut)
		}
		if *csvOut != "" {
			if err := writeExport(*csvOut, func(f *os.File) error {
				return obs.WriteCSV(f, rec.Snapshot())
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
			fmt.Printf("recorder: wrote CSV export to %s\n", *csvOut)
		}
	}

	if failed > 0 {
		fmt.Printf("\n%d invocations failed\n", failed)
		os.Exit(1)
	}

	if *httpAddr != "" {
		display := *httpAddr
		if strings.HasPrefix(display, ":") {
			display = "localhost" + display
		}
		fmt.Printf("\nserving dashboard on http://%s/ (metrics, timeseries.json, heatmap, healthz, debug/pprof)\n", display)
		if err := http.ListenAndServe(*httpAddr, rec.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
	}
}

// writeExport creates path and streams one export into it.
func writeExport(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

// writeTrace renders the spans to path in the chosen format.
func writeTrace(path, format string, spans []*telemetry.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "jsonl" {
		if err := telemetry.WriteJSONLines(f, spans); err != nil {
			return err
		}
	} else {
		if err := telemetry.WriteChromeTrace(f, spans); err != nil {
			return err
		}
	}
	return f.Close()
}
