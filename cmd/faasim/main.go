// Command faasim runs the simulated serverless platform end to end: it
// registers Table I functions under a chosen snapshot mode (toss, reap, or
// dram), replays a randomized invocation trace through a worker pool, and
// prints per-function statistics including the TOSS lifecycle phase and the
// billed memory cost.
//
// With -trace, every invocation is recorded as a virtual-time span tree and
// written as a Chrome trace_event file (load it at https://ui.perfetto.dev)
// or JSON lines; -flame additionally prints an ASCII flame summary of the
// first invocation. Tracing forces a single worker so span order — and the
// output bytes — are deterministic for a given seed.
//
// Usage:
//
//	faasim [-mode toss|reap|dram] [-requests N] [-workers N] [-functions a,b,c]
//	       [-trace out.json] [-trace-format chrome|jsonl] [-flame]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"toss/internal/core"
	"toss/internal/platform"
	"toss/internal/telemetry"
	"toss/internal/workload"
)

func main() {
	modeFlag := flag.String("mode", "toss", "snapshot mode: toss, reap, faasnap, or dram")
	requests := flag.Int("requests", 400, "number of invocations to replay")
	workers := flag.Int("workers", 4, "invoker pool size")
	fns := flag.String("functions", "pyaes,json_load_dump,compress", "comma-separated Table I functions")
	window := flag.Int("window", 12, "TOSS profiling convergence window")
	seed := flag.Int64("seed", 42, "trace seed")
	traceOut := flag.String("trace", "", "write a virtual-time trace to this file (forces -workers 1)")
	traceFormat := flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
	flame := flag.Bool("flame", false, "print an ASCII flame summary of the first traced invocation")
	flag.Parse()

	var mode platform.Mode
	switch *modeFlag {
	case "toss":
		mode = platform.ModeTOSS
	case "reap":
		mode = platform.ModeREAP
	case "faasnap":
		mode = platform.ModeFaaSnap
	case "dram":
		mode = platform.ModeDRAM
	default:
		fmt.Fprintf(os.Stderr, "faasim: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" || *flame {
		switch *traceFormat {
		case "chrome", "jsonl":
		default:
			fmt.Fprintf(os.Stderr, "faasim: unknown trace format %q (want chrome or jsonl)\n", *traceFormat)
			os.Exit(2)
		}
		tracer = telemetry.NewTracer()
		if *workers != 1 {
			fmt.Fprintln(os.Stderr, "faasim: tracing forces -workers 1 for deterministic span order")
			*workers = 1
		}
	}

	cfg := core.DefaultConfig()
	cfg.ConvergenceWindow = *window
	if tracer != nil {
		cfg.VM.Metrics = telemetry.NewMetrics()
	}
	p, err := platform.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		os.Exit(1)
	}
	p.SetTracer(tracer)

	names := strings.Split(*fns, ",")
	for _, name := range names {
		spec, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "faasim: unknown function %q (known: %v)\n", name, workload.Names())
			os.Exit(2)
		}
		if err := p.Register(spec, mode); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	reqs := make([]platform.Request, 0, *requests)
	for i := 0; i < *requests; i++ {
		reqs = append(reqs, platform.Request{
			Function: names[rng.Intn(len(names))],
			Level:    workload.Levels[rng.Intn(len(workload.Levels))],
			Seed:     rng.Int63n(1 << 40),
		})
	}

	fmt.Printf("replaying %d requests over %d workers in %s mode...\n\n",
		len(reqs), *workers, mode)
	records := p.Replay(reqs, *workers)

	var failed int
	for _, r := range records {
		if r.Err != nil {
			failed++
		}
	}

	sort.Strings(names)
	fmt.Printf("%-18s %8s %10s %12s %12s %10s %10s\n",
		"function", "invokes", "phase", "mean exec", "max exec", "cost", "slow %")
	for _, name := range names {
		st, err := p.Stats(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			os.Exit(1)
		}
		phase := "-"
		if mode == platform.ModeTOSS {
			phase = st.Phase.String()
		}
		fmt.Printf("%-18s %8d %10s %12s %12s %10.3f %9.1f%%\n",
			name, st.Invocations, phase,
			st.MeanExec().Std().Round(10e3).String(),
			st.MaxExec.Std().Round(10e3).String(),
			st.NormCost, st.SlowShare*100)
	}

	if tracer != nil {
		spans := tracer.Spans()
		fmt.Printf("\ntrace: %s\n", telemetry.Summarize(spans))
		if *traceOut != "" {
			if err := writeTrace(*traceOut, *traceFormat, spans); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: wrote %d spans to %s (%s)\n", len(spans), *traceOut, *traceFormat)
		}
		if *flame {
			fmt.Printf("\nflame (first invocation):\n%s", telemetry.FlameSummary(spans, 0))
		}
	}

	if failed > 0 {
		fmt.Printf("\n%d invocations failed\n", failed)
		os.Exit(1)
	}
}

// writeTrace renders the spans to path in the chosen format.
func writeTrace(path, format string, spans []*telemetry.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "jsonl" {
		if err := telemetry.WriteJSONLines(f, spans); err != nil {
			return err
		}
	} else {
		if err := telemetry.WriteChromeTrace(f, spans); err != nil {
			return err
		}
	}
	return f.Close()
}
