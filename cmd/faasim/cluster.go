package main

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"toss/internal/cluster"
	"toss/internal/fleet"
	"toss/internal/fleetobs"
	"toss/internal/insight"
	"toss/internal/obs"
	"toss/internal/platform"
	"toss/internal/sched"
	"toss/internal/simtime"
	"toss/internal/workload"
	"toss/internal/xray"
)

// clusterOpts carries the parsed flags that drive cluster mode (-nodes > 0).
type clusterOpts struct {
	nodes      int
	router     string
	arrival    string
	horizon    time.Duration
	meanIAT    time.Duration
	autoscale  bool
	mode       platform.Mode
	window     int
	seed       int64
	functions  []string
	slo        time.Duration
	sloWindow  time.Duration
	alerts     bool
	reportOut  string
	explain    bool
	explainTop int
	// Fleet observability surfaces (internal/fleetobs): the ASCII
	// dashboard, the decision log, the per-node Chrome trace, and the live
	// HTTP node grid all render from one recorder attached to the run.
	fleetview      bool
	decisionLog    string
	fleetTrace     string
	httpAddr       string
	recordInterval time.Duration
}

// runCluster profiles the functions once through the single-host machinery,
// generates a seeded arrival stream, replays it through the fleet simulator,
// and prints the per-function and fleet-level summary. Everything downstream
// of the profile is a serial event loop, so the output is byte-deterministic
// for a given flag set.
func runCluster(o clusterOpts) int {
	var mech sched.Mechanism
	switch o.mode {
	case platform.ModeTOSS:
		mech = sched.MechTOSS
	case platform.ModeREAP:
		mech = sched.MechREAP
	case platform.ModeFaaSnap:
		mech = sched.MechFaaSnap
	case platform.ModeDRAM:
		mech = sched.MechDRAM
	default:
		fmt.Fprintf(os.Stderr, "faasim: -mode %s has no cluster profile (cluster mode supports toss, reap, faasnap, dram)\n", o.mode)
		return 2
	}

	pol, err := cluster.ParsePolicy(o.router)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 2
	}
	proc, err := workload.ParseProcess(o.arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 2
	}

	scfg := sched.DefaultConfig()
	scfg.Core.ConvergenceWindow = o.window
	scfg.Mechanism = mech
	fmt.Printf("profiling %d functions in %s mode...\n", len(o.functions), mech)
	profiles, err := cluster.Profile(scfg, o.functions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}

	arrivals, err := workload.Arrivals(workload.ArrivalsConfig{
		Process:   proc,
		Horizon:   simtime.FromStd(o.horizon),
		MeanIAT:   simtime.FromStd(o.meanIAT),
		Functions: o.functions,
		Seed:      o.seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 2
	}

	ccfg := cluster.DefaultConfig(o.nodes)
	if mech == sched.MechDRAM {
		// A DRAM fleet has no slow tier to keep VMs in; price it honestly.
		ccfg.Hosts = fleet.DRAMOnlyHost().Hosts(o.nodes)
	}
	ccfg.Router = pol
	if o.slo > 0 {
		ccfg.SLO = simtime.FromStd(o.slo)
		ccfg.BurnWindow = simtime.FromStd(o.sloWindow)
	}
	if o.autoscale {
		ccfg.Autoscale.Enabled = true
	}
	var xcol *xray.Collector
	if o.explain || o.explainTop > 0 || o.httpAddr != "" || o.alerts || o.reportOut != "" {
		xcol = xray.NewCollector()
		ccfg.XRay = xcol
	}
	var fr *fleetobs.Recorder
	if o.fleetview || o.decisionLog != "" || o.fleetTrace != "" || o.httpAddr != "" {
		fr = fleetobs.New(fleetobs.Config{})
		ccfg.FleetObs = fr
	}

	cl, err := cluster.New(ccfg, profiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 2
	}
	fmt.Printf("cluster: %d nodes (%s router), %s arrivals over %s (mean IAT %s)\n\n",
		o.nodes, pol, proc, o.horizon, o.meanIAT)
	rep, err := cl.Run(arrivals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasim:", err)
		return 1
	}

	printClusterReport(rep, o)

	if xcol != nil && (o.explain || o.explainTop > 0) {
		// Snapshot, not Drain: -http serves the same budgets afterwards.
		budgets := xcol.Snapshot()
		if o.explain {
			agg := xray.Aggregate("cluster", budgets)
			fmt.Printf("\nattribution (%d budgets, mean per record):\n", agg.Records)
			for i := range agg.Functions {
				fmt.Print(xray.ReportWaterfall(&agg.Functions[i], 32))
			}
		}
		if o.explainTop > 0 {
			slowest := append([]*xray.Budget(nil), budgets...)
			sort.SliceStable(slowest, func(i, j int) bool {
				return slowest[i].Recorded() > slowest[j].Recorded()
			})
			if len(slowest) > o.explainTop {
				slowest = slowest[:o.explainTop]
			}
			fmt.Printf("\nslowest %d invocations:\n", len(slowest))
			for _, b := range slowest {
				fmt.Print(xray.Waterfall(b, 32))
			}
		}
	}

	var eng *insight.Engine
	if o.alerts || o.reportOut != "" {
		// Alerting replays the run's completion-ordered record log after the
		// event loop finishes — attaching it changes no routing or scaling
		// decision. Fire edges blame the hottest attribution segment.
		eng = insight.NewEngine(nil,
			insight.BurnRule("latency-slo", "latency",
				simtime.FromStd(o.slo), simtime.FromStd(o.sloWindow), 4*simtime.FromStd(o.sloWindow), 0.10, 0.05),
			insight.BurnRule("cold-start-rate", "cold",
				0, simtime.FromStd(o.sloWindow), 4*simtime.FromStd(o.sloWindow), 0.25, 0.10))
		if xcol != nil {
			eng.SetBlamer(insight.BlameTop(xray.Aggregate("cluster", xcol.Snapshot())))
		}
		for _, c := range rep.Records.Completions() {
			eng.ObserveLatency("latency", c.At, c.Latency)
			var coldLat simtime.Duration
			if c.Cold {
				coldLat = simtime.Millisecond // any value > the 0 objective
			}
			eng.ObserveLatency("cold", c.At, coldLat)
		}
		res := eng.Result("cluster/" + mech.String())
		if o.alerts {
			fmt.Println()
			if err := insight.WriteAlertLog(os.Stdout, []insight.Result{res}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				return 1
			}
		}
		if o.reportOut != "" {
			if err := writeExport(o.reportOut, func(f *os.File) error {
				return insight.WriteDumpJSON(f, insight.Dump{
					Schema: insight.SchemaVersion,
					Cells:  []insight.Result{res},
				})
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				return 1
			}
			fmt.Printf("insight: wrote dump to %s\n", o.reportOut)
		}
	}

	if fr != nil {
		if o.fleetview {
			fmt.Printf("\n%s", fleetobs.RenderFleet(fr.View(), 32))
		}
		if o.decisionLog != "" {
			if err := writeExport(o.decisionLog, func(f *os.File) error {
				return fr.WriteDecisionLog(f)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				return 1
			}
			fmt.Printf("fleet: wrote decision log to %s\n", o.decisionLog)
		}
		if o.fleetTrace != "" {
			if err := writeExport(o.fleetTrace, func(f *os.File) error {
				return fr.WriteChromeTrace(f)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "faasim:", err)
				return 1
			}
			fmt.Printf("fleet: wrote Chrome trace to %s\n", o.fleetTrace)
		}
	}

	if o.httpAddr != "" {
		// Serve the dashboard over the finished run: the node grid renders
		// from the fleet recorder, the /xray panel from the drained budgets.
		rec := obs.New(obs.Config{Interval: simtime.FromStd(o.recordInterval)})
		rec.SetFleet(fr)
		if xcol != nil {
			rec.SetXRay(xcol)
		}
		rec.SetInsight(eng) // /alerts panel; nil engine renders the empty banner
		display := o.httpAddr
		if strings.HasPrefix(display, ":") {
			display = "localhost" + display
		}
		fmt.Printf("\nserving fleet dashboard on http://%s/ (fleet, fleet.json, xray, healthz)\n", display)
		if err := http.ListenAndServe(o.httpAddr, rec.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "faasim:", err)
			return 1
		}
	}
	return 0
}

// printClusterReport renders the per-function table, the per-node table, and
// the fleet rollup.
func printClusterReport(rep *cluster.Report, o clusterOpts) {
	type agg struct {
		n    int
		cold int
		lat  []simtime.Duration
	}
	byFn := make(map[string]*agg, len(o.functions))
	for _, fn := range o.functions {
		byFn[fn] = &agg{}
	}
	recs := &rep.Records
	for i := 0; i < recs.Len(); i++ {
		a := byFn[recs.Function(i)]
		a.n++
		if recs.Cold(i) {
			a.cold++
		}
		a.lat = append(a.lat, recs.Latency(i))
	}
	names := append([]string(nil), o.functions...)
	sort.Strings(names)

	pct := func(ls []simtime.Duration, p float64) simtime.Duration {
		if len(ls) == 0 {
			return 0
		}
		return ls[int(p/100*float64(len(ls)-1))]
	}
	fmt.Printf("%-18s %8s %8s %12s %12s\n", "function", "invokes", "cold %", "p50", "p99")
	for _, fn := range names {
		a := byFn[fn]
		sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
		coldPct := 0.0
		if a.n > 0 {
			coldPct = float64(a.cold) / float64(a.n) * 100
		}
		fmt.Printf("%-18s %8d %7.1f%% %12s %12s\n", fn, a.n, coldPct,
			pct(a.lat, 50).Std().Round(time.Microsecond).String(),
			pct(a.lat, 99).Std().Round(time.Microsecond).String())
	}

	fmt.Printf("\n%-6s %8s %8s %12s %s\n", "node", "invokes", "cold", "busy", "final")
	for _, ns := range rep.Nodes {
		fmt.Printf("%-6s %8d %8d %12s %v\n", ns.ID, ns.Invocations, ns.ColdStarts,
			ns.Busy.Std().Round(time.Millisecond).String(), ns.Final)
	}

	if len(rep.Router.PerNode) > 0 {
		fmt.Printf("\n%-6s %10s %10s %8s %8s\n", "node", "decisions", "affinity", "spills", "sheds")
		for _, pn := range rep.Router.PerNode {
			fmt.Printf("%-6s %10d %10d %8d %8d\n",
				pn.Node, pn.Decisions, pn.AffinityHits, pn.Spills, pn.Sheds)
		}
	}

	fmt.Printf("\nrouter: %d decisions (%d affinity hits, %d spills, %d sheds); snapshot pulls %d (%s)\n",
		rep.Router.Decisions, rep.Router.AffinityHits, rep.Router.Spills, rep.Router.Sheds,
		rep.Pulls, rep.PullTime.Std().Round(time.Millisecond))
	fmt.Printf("fleet: peak %d nodes, final %d, %d scale events; cold starts %.1f%%; %.1f inv/s over %s\n",
		rep.PeakNodes, rep.FinalNodes, len(rep.ScaleEvents),
		rep.ColdFraction()*100, rep.Throughput(),
		rep.Horizon.Std().Round(time.Millisecond))
	for _, ev := range rep.ScaleEvents {
		fmt.Printf("  scale %-4s %-4s at %-10s util %.2f burn %.2f fleet %d\n",
			ev.Action, ev.Node, ev.At.Std().Round(time.Millisecond), ev.Util, ev.Burn, ev.Fleet)
	}
	if rep.Burn != nil {
		fmt.Printf("\n%s", rep.Burn.Summary())
	}
}
