// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON benchmark report on stdout, optionally joined with suite
// wall-clock timings passed via flags. CI runs it (see scripts/bench.sh)
// to emit BENCH_experiments.json, the artifact the perf regression check
// diffs against; the checked-in copy at the repo root records the numbers
// quoted in the README.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | \
//	    go run ./scripts/benchjson -serial 33.7 -parallel 6.4 -workers 8 > BENCH_experiments.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra carries custom b.ReportMetric units (e.g. "tables/s").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// SchemaVersion stamps the report format; `tossctl diff` refuses to compare
// mismatched schemas (reports written before versioning read as 0 and are
// normalized on load).
const SchemaVersion = 1

// Suite records the end-to-end `tossctl all` wall-clock comparison.
type Suite struct {
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Workers         int     `json:"workers"`
	Speedup         float64 `json:"speedup"`
	// Ext8Seconds is the wall-clock of the ext8 fault-tolerance sweep on
	// its own — the fault machinery's end-to-end cost benchmark.
	Ext8Seconds float64 `json:"ext8_seconds,omitempty"`
	// ExtSeconds is the per-experiment wall-clock of each ext experiment,
	// passed via repeated -ext name=seconds flags. Maps marshal with sorted
	// keys, so the report stays byte-deterministic for given inputs.
	ExtSeconds map[string]float64 `json:"ext_seconds,omitempty"`
	// FleetObsSeconds is the wall-clock of the ext9 cluster sweep with the
	// full observability export on (-xray attribution dump plus -fleetlog
	// decision log) — the end-to-end cost of fleet explainability; compare
	// against ExtSeconds["ext9"] for the observation overhead.
	FleetObsSeconds float64 `json:"fleetobs_seconds,omitempty"`
	// ClusterInvPerSec and ClusterAllocsPerInvocation are derived from
	// BenchmarkClusterRun (the million-invocation streamed fleet day): the
	// event core's simulation throughput and its amortized heap allocations
	// per invocation. The acceptance budget is >= 1M invocations in under
	// 5s on one core at <= 2 allocs/invocation; CI's warn-only guard and
	// the checked-in baseline both read these fields.
	ClusterInvPerSec           float64 `json:"cluster_invocations_per_second,omitempty"`
	ClusterAllocsPerInvocation float64 `json:"cluster_allocs_per_invocation,omitempty"`
	// Ext11Seconds is the wall-clock of the ext11 migration-frontier sweep
	// on its own (hoisted from ExtSeconds): the N-tier migration engine's
	// end-to-end cost benchmark.
	Ext11Seconds float64 `json:"ext11_seconds,omitempty"`
	// MigrationsPerSecond is derived from BenchmarkMigrationEngine's
	// "migrations/s" metric: how fast the engine folds heat and repacks
	// tiers on a drifting working set.
	MigrationsPerSecond float64 `json:"migrations_per_second,omitempty"`
	// InsightSeconds is the wall-clock of the ext11 sweep with the insight
	// layer on (-alerts alert log plus -insight dump) — the end-to-end cost
	// of alert evaluation and the series store; compare against
	// ExtSeconds["ext11"] for the insight overhead.
	InsightSeconds float64 `json:"insight_seconds,omitempty"`
	// AlertsEvalsPerSecond is derived from BenchmarkAlertEngine's "evals/s"
	// metric: how many rule evaluations per second the virtual-time alert
	// engine sustains on a mixed threshold/rate/burn rule set.
	AlertsEvalsPerSecond float64 `json:"alerts_evaluations_per_second,omitempty"`
}

// Report is the document written to stdout.
type Report struct {
	Schema     int         `json:"schema_version"`
	Suite      *Suite      `json:"suite,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// extFlag collects repeated -ext name=seconds pairs.
type extFlag map[string]float64

func (e extFlag) String() string { return fmt.Sprint(map[string]float64(e)) }

func (e extFlag) Set(v string) error {
	name, secs, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=seconds, got %q", v)
	}
	f, err := strconv.ParseFloat(secs, 64)
	if err != nil {
		return fmt.Errorf("bad seconds in %q: %w", v, err)
	}
	e[name] = f
	return nil
}

func main() {
	serial := flag.Float64("serial", 0, "wall-clock seconds of `tossctl all -parallel 1` (0 omits the suite block)")
	parallel := flag.Float64("parallel", 0, "wall-clock seconds of `tossctl all -parallel N`")
	workers := flag.Int("workers", 0, "worker count N used for the parallel run")
	ext8 := flag.Float64("ext8", 0, "wall-clock seconds of the ext8 fault sweep alone (0 omits)")
	fleetobs := flag.Float64("fleetobs", 0, "wall-clock seconds of ext9 with -xray and -fleetlog exports on (0 omits)")
	insight := flag.Float64("insight", 0, "wall-clock seconds of ext11 with -alerts and -insight exports on (0 omits)")
	exts := extFlag{}
	flag.Var(exts, "ext", "per-experiment wall-clock as name=seconds (repeatable, e.g. -ext ext1=3.20)")
	flag.Parse()

	report := Report{Schema: SchemaVersion, Benchmarks: []Benchmark{}}
	if *serial > 0 && *parallel > 0 {
		report.Suite = &Suite{
			SerialSeconds:   *serial,
			ParallelSeconds: *parallel,
			Workers:         *workers,
			Speedup:         *serial / *parallel,
			Ext8Seconds:     *ext8,
			FleetObsSeconds: *fleetobs,
			InsightSeconds:  *insight,
		}
		if len(exts) > 0 {
			report.Suite.ExtSeconds = exts
			report.Suite.Ext11Seconds = exts["ext11"]
		}
	}

	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseBench(line, pkg); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if report.Suite != nil {
		for _, b := range report.Benchmarks {
			switch {
			case strings.HasPrefix(b.Name, "BenchmarkClusterRun"):
				report.Suite.ClusterInvPerSec = b.Extra["inv/s"]
				if inv := b.Extra["invocations"]; inv > 0 {
					report.Suite.ClusterAllocsPerInvocation = b.AllocsPerOp / inv
				}
			case strings.HasPrefix(b.Name, "BenchmarkMigrationEngine"):
				report.Suite.MigrationsPerSecond = b.Extra["migrations/s"]
			case strings.HasPrefix(b.Name, "BenchmarkAlertEngine"):
				report.Suite.AlertsEvalsPerSecond = b.Extra["evals/s"]
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line:
//
//	BenchmarkTraceReplay-8   9246   120884 ns/op   4768 B/op   9 allocs/op
func parseBench(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, b.NsPerOp > 0 || len(b.Extra) > 0
}
