// Command godoccheck enforces godoc coverage on the packages whose APIs the
// docs lean on (TIERS.md, DESIGN.md, OBSERVABILITY.md): every exported
// top-level declaration — type, function, method on an exported type, and
// const/var group — must carry a doc comment, and every package must have a
// package comment on at least one file. CI runs it over the tiering core
// (internal/mem, internal/migrate, internal/snapshot, internal/sched) and
// the observability stack (internal/telemetry, internal/obs,
// internal/fleetobs, internal/xray, internal/insight); it prints one line
// per missing comment and exits non-zero if any are missing.
//
// Usage:
//
//	go run ./scripts/godoccheck ./internal/mem ./internal/migrate ...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: godoccheck <package-dir>...")
		os.Exit(2)
	}
	missing := 0
	for _, dir := range dirs {
		n, err := checkDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "godoccheck:", err)
			os.Exit(2)
		}
		missing += n
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "godoccheck: %d exported declarations lack doc comments\n", missing)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and reports exported
// declarations without doc comments. Test files are exempt: their exported
// helpers document themselves through the tests that call them.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	missing := 0
	complain := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s has no doc comment\n", filepath.ToSlash(p.Filename), p.Line, what)
		missing++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", filepath.ToSlash(dir), pkg.Name)
			missing++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || exportedRecv(d) == false {
						continue
					}
					if d.Doc == nil {
						complain(d.Pos(), "func "+funcName(d))
					}
				case *ast.GenDecl:
					missing += checkGen(d, complain)
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a func is plain or its receiver type is
// exported (methods on unexported types are internal API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// funcName renders Recv.Name for methods, Name for plain funcs.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGen handles type/const/var declarations. A grouped const/var decl is
// fine if the group has a doc comment; individual specs inside a documented
// group are exempt (idiomatic enumerations comment the block, not each
// name). Types are checked one by one.
func checkGen(d *ast.GenDecl, complain func(token.Pos, string)) int {
	switch d.Tok {
	case token.TYPE:
		n := 0
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil {
				complain(ts.Pos(), "type "+ts.Name.Name)
				n++
			}
		}
		return n
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return 0
		}
		n := 0
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					complain(name.Pos(), d.Tok.String()+" "+name.Name)
					n++
				}
			}
		}
		return n
	}
	return 0
}
