#!/usr/bin/env bash
# bench.sh — the benchmark regression harness.
#
# Runs the perf-critical benchmarks (trace replay, trace compilation, the
# TOSS pipeline build) plus the end-to-end `tossctl all` suite serially and
# in parallel, and emits BENCH_experiments.json. CI uploads the file as an
# artifact per run; compare it against the checked-in copy at the repo root
# to spot regressions.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_experiments.json}"
workers="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== micro-benchmarks ==" >&2
# ClusterRun is the event core's headline: a ~1M-invocation streamed fleet
# day per op; benchjson derives cluster_invocations_per_second and
# cluster_allocs_per_invocation from its line. MigrationEngine drives the
# N-tier migration daemon over a drifting working set; benchjson hoists its
# migrations/s metric into the suite block as migrations_per_second.
# AlertEngine drives the virtual-time alert engine over a mixed rule set;
# benchjson hoists its evals/s metric as alerts_evaluations_per_second.
go test -run='^$' -bench='TraceReplay|TraceCompile|BuildPagerank|SuiteSubset|ClusterRun|MigrationEngine|AlertEngine' -benchmem \
    ./internal/microvm/ ./internal/workload/ ./internal/experiments/ ./internal/cluster/ ./internal/migrate/ ./internal/insight/ | tee "$tmp/bench.txt" >&2

echo "== suite wall-clock ==" >&2
go build -o "$tmp/tossctl" ./cmd/tossctl

serial_start=$(date +%s.%N)
"$tmp/tossctl" -parallel 1 all > "$tmp/serial.txt"
serial_end=$(date +%s.%N)
serial=$(echo "$serial_end $serial_start" | awk '{printf "%.2f", $1 - $2}')

par_start=$(date +%s.%N)
"$tmp/tossctl" -parallel "$workers" all > "$tmp/parallel.txt"
par_end=$(date +%s.%N)
par=$(echo "$par_end $par_start" | awk '{printf "%.2f", $1 - $2}')

if ! cmp -s "$tmp/serial.txt" "$tmp/parallel.txt"; then
    echo "FATAL: tossctl all output differs between -parallel 1 and -parallel $workers" >&2
    exit 1
fi
echo "serial ${serial}s, parallel(${workers}) ${par}s, outputs byte-identical" >&2

# Per-experiment wall-clock of every ext experiment, ext9 included (ext8
# doubles as the fault machinery's end-to-end cost benchmark and keeps its
# own field; ext9 times the cluster simulator end to end, profiling plus the
# full fleet x router x arrival ladder sweep).
ext_flags=()
ext8=0
for id in $("$tmp/tossctl" list | grep '^ext'); do
    t_start=$(date +%s.%N)
    "$tmp/tossctl" -parallel 1 "$id" > /dev/null
    t_end=$(date +%s.%N)
    secs=$(echo "$t_end $t_start" | awk '{printf "%.2f", $1 - $2}')
    echo "$id ${secs}s" >&2
    ext_flags+=(-ext "$id=$secs")
    if [ "$id" = ext8 ]; then ext8="$secs"; fi
done

# Fleet observability export cost: ext9 again with the attribution dump and
# the fleet decision log on — the delta against the bare ext9 time above is
# what full explainability costs end to end.
fo_start=$(date +%s.%N)
"$tmp/tossctl" -parallel 1 -xray "$tmp/fleet-xray.json" -fleetlog "$tmp/fleet.jsonl" ext9 > /dev/null 2>&1
fo_end=$(date +%s.%N)
fleetobs=$(echo "$fo_end $fo_start" | awk '{printf "%.2f", $1 - $2}')
echo "ext9 with -xray/-fleetlog ${fleetobs}s" >&2

# Insight export cost: ext11 again with the alert log and insight dump on —
# the delta against the bare ext11 time above is what alert evaluation and
# the series store cost end to end.
in_start=$(date +%s.%N)
"$tmp/tossctl" -parallel 1 -alerts "$tmp/alerts.txt" -insight "$tmp/insight.json" ext11 > /dev/null 2>&1
in_end=$(date +%s.%N)
insight=$(echo "$in_end $in_start" | awk '{printf "%.2f", $1 - $2}')
echo "ext11 with -alerts/-insight ${insight}s" >&2

go run ./scripts/benchjson -serial "$serial" -parallel "$par" -workers "$workers" \
    -ext8 "$ext8" -fleetobs "$fleetobs" -insight "$insight" "${ext_flags[@]}" < "$tmp/bench.txt" > "$out"
echo "wrote $out" >&2

# Run-to-run regression diff against the checked-in baseline: warn-only (CI
# machines vary); pass -fail in a gating context.
if [ -f BENCH_experiments.json ] && [ "$out" != BENCH_experiments.json ]; then
    echo "== diff vs checked-in baseline (warn-only, 25% threshold) ==" >&2
    "$tmp/tossctl" diff BENCH_experiments.json "$out" >&2 || true
fi
