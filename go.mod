module toss

go 1.22
