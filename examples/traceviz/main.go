// Traceviz demonstrates the public telemetry API end to end: it drives a few
// invocations through the TOSS controller with a tracer and a metrics
// registry attached, then renders the same recorded data four ways —
//
//  1. an ASCII flame summary of one invocation's span tree,
//  2. a Chrome trace_event file (open trace.json at https://ui.perfetto.dev),
//  3. the JSON-lines span dump for ad-hoc processing, and
//  4. the metrics registry: counters, fault-latency histogram, tier shares.
//
// Everything is stamped with virtual time, so the output is byte-for-byte
// identical on every run.
//
// Run with: go run ./examples/traceviz
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"toss/internal/core"
	"toss/internal/telemetry"
	"toss/internal/workload"
)

func main() {
	spec, ok := workload.ByName("pyaes")
	if !ok {
		log.Fatal("pyaes not registered")
	}

	// Attach telemetry: the tracer records span trees, the metrics registry
	// (threaded through the VM config) accumulates counters and histograms.
	tracer := telemetry.NewTracer()
	met := telemetry.NewMetrics()
	cfg := core.DefaultConfig()
	cfg.ConvergenceWindow = 4
	cfg.VM.Metrics = met

	ctrl, err := core.NewController(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	// Each invocation becomes one root span on its own track; the controller
	// nests phase, restore, fault, DAMON, and execution spans below it. Run
	// through profiling convergence plus two tiered invocations.
	invoke := func(i int) *core.Result {
		root := tracer.Root(telemetry.KindInvocation, spec.Name, 0,
			telemetry.I64("seq", int64(i)))
		res, err := ctrl.InvokeTraced(workload.Levels[i%4], int64(i+1), 1, root)
		if err != nil {
			log.Fatal(err)
		}
		root.EndAt(res.Total())
		return &res
	}
	i := 0
	for ; ; i++ {
		if i > 400 {
			log.Fatal("did not converge")
		}
		if invoke(i).Converged {
			fmt.Printf("invocation %d converged profiling; now serving tiered\n", i)
			break
		}
	}
	for n := 0; n < 2; n++ {
		i++
		invoke(i)
	}

	spans := tracer.Spans()
	fmt.Printf("recorded %d spans across %d invocations\n\n", len(spans), tracer.Tracks())

	// 1. ASCII flames: the boot + snapshot capture, and a tiered invocation
	// restoring from the two-tier snapshot.
	fmt.Printf("flame of invocation 0 (initial):\n%s\n", telemetry.FlameSummary(spans, 0))
	fmt.Printf("flame of invocation %d (tiered):\n%s\n",
		i, telemetry.FlameSummary(spans, tracer.Tracks()-1))

	// 2. Chrome trace for Perfetto.
	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(f, spans); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote trace.json — load it at https://ui.perfetto.dev")

	// 3. JSON lines, one span per line; show the first three.
	var jl bytes.Buffer
	if err := telemetry.WriteJSONLines(&jl, spans); err != nil {
		log.Fatal(err)
	}
	lines := bytes.SplitN(jl.Bytes(), []byte("\n"), 4)
	fmt.Println("\nfirst span records as JSON lines:")
	for _, line := range lines[:3] {
		fmt.Printf("  %s\n", line)
	}

	// 4. Aggregate views: per-run summary and the metrics registry.
	fmt.Printf("\n%s\n", telemetry.Summarize(spans))
	fast, slow := met.TierUtilization()
	fmt.Printf("tier memory-time shares: fast %.1f%% slow %.1f%%\n\n", fast*100, slow*100)
	fmt.Print(met.Dump())
}
