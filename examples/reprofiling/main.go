// Reprofiling demonstrates TOSS's snapshot re-generation mechanism (§V-E):
// a function is profiled on small inputs only, then production traffic
// shifts to much larger requests. Each long invocation grows the
// accelerating factor (Eq. 3) against the recorded profiling overhead
// (Eq. 2) until Eq. 4 trips, TOSS re-enters the profiling phase, and the
// regenerated tiered snapshot covers the new behaviour.
//
// Run with: go run ./examples/reprofiling
package main

import (
	"fmt"
	"log"

	"toss/internal/core"
	"toss/internal/workload"
)

func main() {
	spec, ok := workload.ByName("image_processing")
	if !ok {
		log.Fatal("image_processing not registered")
	}

	cfg := core.DefaultConfig()
	cfg.ConvergenceWindow = 6
	// A loose budget so the demo trips quickly; the paper's 0.0001 bounds
	// profiling to 0.01% of invocations in production.
	cfg.ReprofileBudget = 0.5

	ctrl, err := core.NewController(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: profile on small inputs only (I and II).
	fmt.Println("phase 1: profiling on small inputs (I, II) only")
	seed := int64(1)
	invoke := func(lv workload.Level) core.Result {
		seed++
		res, err := ctrl.Invoke(lv, seed, 1)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	invoke(workload.I)
	for i := 0; ctrl.Phase() != core.PhaseTiered; i++ {
		if i > 400 {
			log.Fatal("no convergence")
		}
		lv := workload.I
		if i%2 == 1 {
			lv = workload.II
		}
		invoke(lv)
	}
	a := ctrl.Analysis()
	fmt.Printf("  converged: cost %.3f, slow share %.1f%%, profiling overhead %.1f invocation-equivalents\n\n",
		a.MinCost(), a.SlowShare()*100, a.ProfilingOverhead)

	// Phase 2: production shifts to input IV — every invocation runs far
	// longer than anything profiling saw.
	fmt.Println("phase 2: production shifts to input IV (longer than the profiled LRI)")
	tripped := 0
	for i := 0; i < 200 && tripped == 0; i++ {
		res := invoke(workload.IV)
		if res.ReprofileTriggered {
			tripped = i + 1
		}
	}
	if tripped == 0 {
		log.Fatal("re-profiling never triggered")
	}
	fmt.Printf("  Eq. 4 tripped after %d oversized invocations -> back to profiling\n\n", tripped)

	// Phase 3: re-profile on the real mix and converge again.
	fmt.Println("phase 3: re-profiling with the new mix")
	for i := 0; ctrl.Phase() != core.PhaseTiered; i++ {
		if i > 400 {
			log.Fatal("no re-convergence")
		}
		invoke(workload.Levels[i%4])
	}
	a2 := ctrl.Analysis()
	fmt.Printf("  regenerated snapshot: cost %.3f, slow share %.1f%% (re-profiles: %d)\n",
		a2.MinCost(), a2.SlowShare()*100, ctrl.Reprofiles())
	fmt.Println("  the enhanced unified pattern now covers input IV's footprint")
}
