// Platformdemo runs the three snapshot mechanisms side by side on the same
// randomized invocation trace — the comparison the paper's evaluation makes,
// as one program: a TOSS platform, a REAP platform, and a DRAM lazy-restore
// platform each serve the identical request stream, and the demo prints the
// latency and billing differences.
//
// Run with: go run ./examples/platformdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"toss/internal/core"
	"toss/internal/platform"
	"toss/internal/simtime"
	"toss/internal/workload"
)

const (
	requests = 320
	workers  = 4
)

var functions = []string{"pyaes", "compress", "lr_serving"}

func main() {
	// One deterministic trace, shared by all three platforms.
	rng := rand.New(rand.NewSource(7))
	var reqs []platform.Request
	for i := 0; i < requests; i++ {
		reqs = append(reqs, platform.Request{
			Function: functions[rng.Intn(len(functions))],
			Level:    workload.Levels[rng.Intn(4)],
			Seed:     rng.Int63n(1 << 40),
		})
	}

	fmt.Printf("replaying the same %d-request trace under each mechanism...\n\n", requests)
	fmt.Printf("%-6s %-18s %9s %12s %12s %9s %8s\n",
		"mode", "function", "invokes", "mean total", "max total", "cost", "slow %")

	for _, mode := range []platform.Mode{platform.ModeDRAM, platform.ModeREAP, platform.ModeTOSS} {
		cfg := core.DefaultConfig()
		cfg.ConvergenceWindow = 10
		p, err := platform.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range functions {
			spec, _ := workload.ByName(name)
			if err := p.Register(spec, mode); err != nil {
				log.Fatal(err)
			}
		}
		perFn := map[string][]simtime.Duration{}
		for _, rec := range p.Replay(reqs, workers) {
			if rec.Err != nil {
				log.Fatalf("%s: %v", mode, rec.Err)
			}
			perFn[rec.Function] = append(perFn[rec.Function], rec.Total())
		}
		for _, name := range functions {
			st, err := p.Stats(name)
			if err != nil {
				log.Fatal(err)
			}
			var sum, max simtime.Duration
			for _, d := range perFn[name] {
				sum += d
				if d > max {
					max = d
				}
			}
			mean := simtime.Duration(0)
			if n := len(perFn[name]); n > 0 {
				mean = simtime.Duration(int64(sum) / int64(n))
			}
			fmt.Printf("%-6s %-18s %9d %12s %12s %9.3f %7.1f%%\n",
				mode, name, st.Invocations,
				mean.Std().Round(10e3), max.Std().Round(10e3),
				st.NormCost, st.SlowShare*100)
		}
		fmt.Println()
	}
	fmt.Println("TOSS bills below 1.0 once profiling converges; DRAM and REAP stay at the DRAM-only price.")
}
