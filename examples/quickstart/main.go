// Quickstart walks the full TOSS lifecycle for one function, printing what
// happens at each step of the paper's pipeline (§IV):
//
//  1. the initial DRAM-only execution and single-tier snapshot,
//  2. the DAMON profiling phase with convergence detection,
//  3. the profiling analysis (zero pages, bins, cost curve), and
//  4. tiered serving from the generated two-tier snapshot.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"toss/internal/core"
	"toss/internal/workload"
)

func main() {
	spec, ok := workload.ByName("matmul")
	if !ok {
		log.Fatal("matmul not registered")
	}

	cfg := core.DefaultConfig()
	// The paper's prototype waits for 100 unchanged invocations; a short
	// window keeps the quickstart quick without changing the outcome for
	// this deterministic workload.
	cfg.ConvergenceWindow = 8

	ctrl, err := core.NewController(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	// Step I: first invocation boots a fresh VM and captures the snapshot.
	res, err := ctrl.Invoke(workload.II, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step I   initial execution: setup %v (boot + snapshot), exec %v\n",
		res.Setup.Std().Round(1e6), res.Exec.Std().Round(1e6))

	// Step II: profiling invocations with mixed inputs until convergence.
	invocations := 1
	for i := 0; ; i++ {
		res, err = ctrl.Invoke(workload.Levels[i%4], int64(i+2), 1)
		if err != nil {
			log.Fatal(err)
		}
		invocations++
		if res.Converged {
			break
		}
		if i > 400 {
			log.Fatal("did not converge")
		}
	}
	fmt.Printf("step II  profiling converged after %d invocations (DAMON overhead %.0f%%)\n",
		invocations, (cfg.Damon.OverheadFactor()-1)*100)

	// Step III results: the analysis TOSS used to pick the placement.
	a := ctrl.Analysis()
	fmt.Printf("step III analysis: %d bins over %d accessed regions; zero pages: %.1f%% of guest\n",
		len(a.Bins), countRegions(a), float64(a.ZeroSlowPages)/float64(a.GuestPages)*100)
	fmt.Println("         cumulative offload curve (bins sorted by cost efficiency):")
	for _, p := range a.Curve {
		marker := " "
		if p.BinsOffloaded == a.ChosenK {
			marker = "*"
		}
		fmt.Printf("         %s k=%-2d slowdown %.3fx  slow share %5.1f%%  norm cost %.3f\n",
			marker, p.BinsOffloaded, p.Slowdown,
			float64(p.SlowPages)/float64(a.GuestPages)*100, p.NormCost)
	}
	fmt.Printf("         chosen: %d bins offloaded -> cost %.3f (optimal %.1f, DRAM-only 1.0)\n",
		a.ChosenK, a.MinCost(), cfg.Cost.Optimal())

	// Step IV: serve from the tiered snapshot.
	ts := ctrl.Tiered()
	fmt.Printf("step IV  tiered snapshot: %d layout regions, %.1f%% of resident pages in the slow tier\n",
		ts.Regions(), ts.SlowShare()*100)
	res, err = ctrl.Invoke(workload.IV, 999, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         tiered invocation: setup %v, exec %v\n",
		res.Setup.Std().Round(1e3), res.Exec.Std().Round(1e6))
}

func countRegions(a *core.Analysis) int {
	n := 0
	for _, b := range a.Bins {
		n += len(b.Regions)
	}
	return n
}
