// Trafficsim replays a realistic multi-pattern invocation trace (fixed-
// period, bursty, steady, and diurnal functions, as characterized by
// "Serverless in the Wild") through the discrete-event host simulator,
// comparing the three snapshot mechanisms with and without the orthogonal
// keep-alive + pre-warming layer of §VI-A.
//
// Run with: go run ./examples/trafficsim [-horizon 120] [-cores 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"toss/internal/sched"
	"toss/internal/simtime"
	"toss/internal/trace"
)

func main() {
	horizonSec := flag.Int("horizon", 120, "trace horizon in virtual seconds")
	cores := flag.Int("cores", 8, "invocation slots on the host")
	flag.Parse()

	horizon := simtime.Duration(*horizonSec) * simtime.Second
	arrivals, err := trace.Generate(trace.Config{
		Horizon: horizon,
		Mix: []trace.FunctionMix{
			{Function: "pyaes", Pattern: trace.Fixed, MeanIAT: 3 * simtime.Second},
			{Function: "json_load_dump", Pattern: trace.Bursty, MeanIAT: 2 * simtime.Second},
			{Function: "compress", Pattern: trace.Steady, MeanIAT: 4 * simtime.Second},
			{Function: "image_processing", Pattern: trace.Diurnal, MeanIAT: 2 * simtime.Second},
		},
		Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	functions := []string{"pyaes", "json_load_dump", "compress", "image_processing"}

	fmt.Printf("trace: %d arrivals over %v on %d cores\n", len(arrivals), horizon, *cores)
	for fn, st := range trace.Summarize(arrivals) {
		fmt.Printf("  %-18s %4d arrivals, mean IAT %v, max gap %v\n",
			fn, st.Count, st.MeanIAT.Std().Round(1e6), st.MaxGap.Std().Round(1e6))
	}
	fmt.Println()
	fmt.Printf("%-6s %-22s %7s %7s %10s %12s %12s\n",
		"mech", "config", "cold %", "warm %", "p50 (ms)", "p99 (ms)", "util %")

	for _, mech := range []sched.Mechanism{sched.MechDRAM, sched.MechREAP, sched.MechTOSS} {
		for _, withCache := range []bool{false, true} {
			cfg := sched.DefaultConfig()
			cfg.Cores = *cores
			cfg.Mechanism = mech
			cfg.Core.ConvergenceWindow = 10
			label := "bare"
			if withCache {
				cfg.KeepAliveFastBytes = 256 << 20
				cfg.KeepAliveSlowBytes = 1 << 30
				cfg.KeepAliveTTL = 4 * simtime.Second
				cfg.Prewarm = true
				label = "keep-alive+prewarm"
			}
			sim, err := sched.New(cfg, functions)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := sim.Run(arrivals)
			if err != nil {
				log.Fatal(err)
			}
			warm := 0
			for _, r := range rep.Records {
				if r.Start != sched.ColdStart {
					warm++
				}
			}
			fmt.Printf("%-6s %-22s %6.0f%% %6.0f%% %10.1f %12.1f %11.1f%%\n",
				mech, label,
				rep.ColdFraction()*100,
				float64(warm)/float64(len(rep.Records))*100,
				rep.LatencyPercentile(50).Milliseconds(),
				rep.LatencyPercentile(99).Milliseconds(),
				rep.Utilization(*cores)*100)
		}
	}
	fmt.Println("\nTOSS's near-constant tiered restores make it the least cache-dependent mechanism (§VI-A).")
}
