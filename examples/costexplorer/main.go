// Costexplorer explores the memory cost formula (Eq. 1) interactively-ish:
// for one function it sweeps the fast:slow cost ratio and the slowdown
// threshold, showing how the chosen placement, slowdown, and bill move —
// the knobs a cloud vendor would tune when adopting TOSS pricing (§II-D,
// §III-D).
//
// Run with: go run ./examples/costexplorer [-function pagerank]
package main

import (
	"flag"
	"fmt"
	"log"

	"toss/internal/core"
	"toss/internal/costmodel"
	"toss/internal/workload"
)

func main() {
	fn := flag.String("function", "pagerank", "Table I function to explore")
	flag.Parse()

	spec, ok := workload.ByName(*fn)
	if !ok {
		log.Fatalf("unknown function %q (known: %v)", *fn, workload.Names())
	}

	// Profile once; analysis is re-run per configuration below.
	base := core.DefaultConfig()
	base.ConvergenceWindow = 8
	pd := profile(base, spec)

	fmt.Printf("function %s: %d MB guest\n\n", spec.Name, spec.MemBytes>>20)

	fmt.Println("— sweep 1: fast:slow cost ratio (slowdown unconstrained) —")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "ratio", "optimal", "norm cost", "slowdown", "slow share")
	for _, ratio := range []float64{1.5, 2.0, 2.5, 3.5, 5.0} {
		cfg := base
		m, err := costmodel.WithRatio(ratio)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cost = m
		a, err := core.Analyze(cfg, pd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %12.3f %12.3f %11.1f%% %11.1f%%\n",
			ratio, m.Optimal(), a.MinCost(), (a.MinCostSlowdown()-1)*100, a.SlowShare()*100)
	}

	fmt.Println("\n— sweep 2: slowdown threshold (ratio 2.5) —")
	fmt.Printf("%10s %12s %12s %12s\n", "threshold", "norm cost", "slowdown", "slow share")
	for _, th := range []float64{0, 0.30, 0.20, 0.10, 0.05, 0.01} {
		cfg := base
		cfg.SlowdownThreshold = th
		a, err := core.Analyze(cfg, pd)
		if err != nil {
			log.Fatal(err)
		}
		label := "none"
		if th > 0 {
			label = fmt.Sprintf("%.0f%%", th*100)
		}
		fmt.Printf("%10s %12.3f %11.1f%% %11.1f%%\n",
			label, a.MinCost(), (a.MinCostSlowdown()-1)*100, a.SlowShare()*100)
	}
	fmt.Println("\nlower ratios shrink the win; tight thresholds trade bill for latency (§V-C)")
}

// profile runs Steps I-II until the unified pattern converges.
func profile(cfg core.Config, spec *workload.Spec) *core.ProfileData {
	pd, _, err := core.NewProfileData(cfg, spec, workload.I, 1)
	if err != nil {
		log.Fatal(err)
	}
	stable := 0
	for i := 0; stable < cfg.ConvergenceWindow; i++ {
		if i > 400 {
			log.Fatal("profiling did not converge")
		}
		_, changed, err := pd.ProfileInvocation(cfg, workload.Levels[i%4], int64(i+2), 1)
		if err != nil {
			log.Fatal(err)
		}
		if changed {
			stable = 0
		} else {
			stable++
		}
	}
	return pd
}
